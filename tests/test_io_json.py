"""Tests for JSON interchange: task graphs, schedules, networks."""

import json
from fractions import Fraction

import pytest

from repro.apps import build_fig1_network, build_fms_network, fig1_wcets, fms_wcets
from repro.core import ChannelKind
from repro.io import (
    FormatError,
    load_json,
    network_from_dict,
    network_to_dict,
    save_json,
    schedule_from_dict,
    schedule_to_dict,
    task_graph_from_dict,
    task_graph_to_dict,
)
from repro.scheduling import find_feasible_schedule
from repro.taskgraph import derive_task_graph, task_graph_load


@pytest.fixture(scope="module")
def fig1_graph():
    return derive_task_graph(build_fig1_network(), fig1_wcets())


class TestTaskGraphRoundTrip:
    def test_lossless(self, fig1_graph):
        data = task_graph_to_dict(fig1_graph)
        back = task_graph_from_dict(data)
        assert [j.name for j in back.jobs] == [j.name for j in fig1_graph.jobs]
        assert back.edges() == fig1_graph.edges()
        assert back.hyperperiod == fig1_graph.hyperperiod

    def test_rational_times_preserved(self):
        from repro.taskgraph.graph import TaskGraph
        from repro.taskgraph.jobs import Job

        g = TaskGraph(
            [Job("p", 1, Fraction(1, 3), Fraction(2, 3), Fraction(1, 7))],
            [],
            Fraction(2, 3),
        )
        back = task_graph_from_dict(task_graph_to_dict(g))
        assert back.jobs[0].arrival == Fraction(1, 3)
        assert back.jobs[0].wcet == Fraction(1, 7)

    def test_server_metadata_preserved(self, fig1_graph):
        back = task_graph_from_dict(task_graph_to_dict(fig1_graph))
        j = back.job("CoefB[2]")
        assert j.is_server and j.subset_index == 1 and j.slot == 2

    def test_is_json_serializable(self, fig1_graph):
        json.dumps(task_graph_to_dict(fig1_graph))

    def test_analysis_identical_after_roundtrip(self, fig1_graph):
        back = task_graph_from_dict(task_graph_to_dict(fig1_graph))
        assert task_graph_load(back).load == task_graph_load(fig1_graph).load

    def test_format_checked(self):
        with pytest.raises(FormatError, match="expected format"):
            task_graph_from_dict({"format": "other", "version": 1})

    def test_version_checked(self, fig1_graph):
        data = task_graph_to_dict(fig1_graph)
        data["version"] = 99
        with pytest.raises(FormatError, match="version"):
            task_graph_from_dict(data)

    def test_missing_field_reported(self):
        with pytest.raises(FormatError, match="missing field"):
            task_graph_from_dict(
                {"format": "fppn-taskgraph", "version": 1,
                 "jobs": [{"process": "p"}], "edges": []}
            )

    def test_bad_time_reported(self):
        with pytest.raises(FormatError, match="bad time"):
            task_graph_from_dict(
                {"format": "fppn-taskgraph", "version": 1, "hyperperiod": "x!",
                 "jobs": [], "edges": []}
            )


class TestScheduleRoundTrip:
    def test_lossless(self, fig1_graph):
        schedule = find_feasible_schedule(fig1_graph, 2)
        back = schedule_from_dict(schedule_to_dict(schedule))
        assert back.processors == 2
        for i in range(len(fig1_graph)):
            assert back.start(i) == schedule.start(i)
            assert back.mapping(i) == schedule.mapping(i)
        assert back.is_feasible()

    def test_json_serializable(self, fig1_graph):
        schedule = find_feasible_schedule(fig1_graph, 2)
        json.dumps(schedule_to_dict(schedule))

    def test_executable_after_roundtrip(self, fig1_graph):
        """A deserialized schedule drives the runtime like the original."""
        from repro.apps import fig1_stimulus
        from repro.runtime import run_static_order

        net = build_fig1_network()
        schedule = find_feasible_schedule(fig1_graph, 2)
        back = schedule_from_dict(schedule_to_dict(schedule))
        a = run_static_order(net, schedule, 2, fig1_stimulus(2))
        b = run_static_order(net, back, 2, fig1_stimulus(2))
        assert a.observable() == b.observable()


class TestNetworkRoundTrip:
    def test_structure_preserved(self):
        net = build_fig1_network()
        back = network_from_dict(network_to_dict(net))
        assert set(back.processes) == set(net.processes)
        assert set(back.channels) == set(net.channels)
        assert back.priorities == net.priorities
        assert set(back.external_inputs) == set(net.external_inputs)
        assert back.channels["b_coef"].kind is ChannelKind.BLACKBOARD

    def test_generators_preserved(self):
        back = network_from_dict(network_to_dict(build_fig1_network()))
        coef = back.processes["CoefB"]
        assert coef.is_sporadic and coef.burst == 2 and coef.period == 700

    def test_derivation_identical(self):
        net = build_fms_network()
        back = network_from_dict(network_to_dict(net))
        g1 = derive_task_graph(net, fms_wcets())
        g2 = derive_task_graph(back, fms_wcets())
        assert [j.name for j in g1.jobs] == [j.name for j in g2.jobs]
        assert g1.edges() == g2.edges()

    def test_kernels_reattached(self):
        from repro.core import run_zero_delay

        net = build_fig1_network()
        kernels = {
            name: (lambda ctx: None) for name in net.processes
        }
        seen = []
        kernels["InputA"] = lambda ctx: seen.append(ctx.k)
        back = network_from_dict(network_to_dict(net), kernels)
        run_zero_delay(back, 400)
        assert seen == [1, 2]

    def test_validates_after_roundtrip(self):
        back = network_from_dict(network_to_dict(build_fms_network()))
        back.validate_taskgraph_subclass()


class TestFileHelpers:
    def test_save_and_load(self, tmp_path, fig1_graph):
        path = tmp_path / "graph.json"
        save_json(task_graph_to_dict(fig1_graph), str(path))
        back = task_graph_from_dict(load_json(str(path)))
        assert len(back) == len(fig1_graph)


class TestServiceWireCodecs:
    """PoolEvent / ticket-status codecs (ISSUE 9): the payloads the
    sweep service streams over JSON-RPC."""

    def test_pool_event_round_trip(self):
        from repro.experiment import PoolEvent
        from repro.io.json_io import pool_event_from_dict, pool_event_to_dict

        event = PoolEvent(
            kind="dispatch", gid=3, cells=4, groups=0,
            detail="slot 1, attempt 2",
        )
        encoded = pool_event_to_dict(event)
        json.dumps(encoded)  # pure JSON
        assert pool_event_from_dict(encoded) == event

    def test_pool_event_defaults_and_null_gid(self):
        from repro.experiment import PoolEvent
        from repro.io.json_io import pool_event_from_dict, pool_event_to_dict

        event = PoolEvent(kind="finished")
        back = pool_event_from_dict(pool_event_to_dict(event))
        assert back == event and back.gid is None

    def test_pool_event_rejects_bad_shapes(self):
        from repro.io.json_io import pool_event_from_dict

        with pytest.raises(FormatError):
            pool_event_from_dict({"cells": 3})  # no kind
        with pytest.raises(FormatError):
            pool_event_from_dict({"kind": "dispatch", "gid": "three"})

    def test_ticket_status_round_trip(self):
        from repro.io.json_io import (
            ticket_status_from_dict,
            ticket_status_to_dict,
        )
        from repro.service.orchestrator import TicketStatus

        status = TicketStatus(
            ticket=7, client="alice", state="running", cells=6,
            rows_streamed=2, done=False,
        )
        encoded = ticket_status_to_dict(status)
        json.dumps(encoded)
        assert ticket_status_from_dict(encoded) == status

    def test_ticket_status_untagged_client(self):
        from repro.io.json_io import (
            ticket_status_from_dict,
            ticket_status_to_dict,
        )
        from repro.service.orchestrator import TicketStatus

        status = TicketStatus(
            ticket=1, client=None, state="done", cells=1,
            rows_streamed=1, done=True,
        )
        assert ticket_status_from_dict(
            ticket_status_to_dict(status)
        ) == status

    def test_ticket_status_rejects_bad_shapes(self):
        from repro.io.json_io import ticket_status_from_dict

        with pytest.raises(FormatError):
            ticket_status_from_dict({"state": "running"})  # no ticket
        with pytest.raises(FormatError):
            ticket_status_from_dict({"ticket": 1, "state": "sleeping"})
        with pytest.raises(FormatError):
            ticket_status_from_dict(
                {"ticket": 1, "state": "done", "client": 5}
            )


# ---------------------------------------------------------------------------
# heterogeneous-platform encoding + pre-platform back compat
# ---------------------------------------------------------------------------
FIXTURES = __file__.rsplit("/", 1)[0] + "/fixtures"


class TestPreHeteroBackCompat:
    """Documents written before the platform model decode (and re-encode)
    unchanged: the platform/wcet_by_class keys are omitted-when-default,
    so old payloads — and their content hashes — stay byte-stable."""

    def test_prehetero_scenario_decodes_homogeneous(self):
        from repro.io.json_io import scenario_from_dict, scenario_to_dict

        data = load_json(f"{FIXTURES}/prehetero_scenario.json")
        scenario = scenario_from_dict(data)
        assert scenario.platform is None
        assert scenario.processors == 2
        assert scenario.label == "prehetero-fixture"
        # Re-encoding reproduces the committed document exactly.
        assert scenario_to_dict(scenario) == data

    def test_prehetero_scenario_hash_is_stable(self):
        from repro.experiment.store import scenario_hash
        from repro.io.json_io import scenario_from_dict

        data = load_json(f"{FIXTURES}/prehetero_scenario.json")
        scenario = scenario_from_dict(data)
        # The hash of the canonical encoding equals the hash of the
        # committed bytes' canonical form — stored sweep rows keyed by
        # pre-platform scenario hashes keep resolving.
        canonical = json.dumps(
            data, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        import hashlib

        assert scenario_hash(scenario) == hashlib.sha256(canonical).hexdigest()

    def test_prehetero_matrix_round_trips(self):
        from repro.io.json_io import matrix_from_dict, matrix_to_dict

        data = load_json(f"{FIXTURES}/prehetero_matrix.json")
        matrix = matrix_from_dict(data)
        assert matrix.base.platform is None
        assert matrix.axes["processors"] == (1, 2)
        assert matrix_to_dict(matrix) == data

    def test_prehetero_sweep_round_trips(self):
        from repro.io.json_io import (
            sweep_result_from_dict,
            sweep_result_to_dict,
        )

        data = load_json(f"{FIXTURES}/prehetero_sweep.json")
        result = sweep_result_from_dict(data)
        assert len(result.rows) == 4 and not result.failed_rows
        assert sweep_result_to_dict(result) == data

    def test_prehetero_schedule_document_decodes(self, fig1_graph):
        # A schedule dict without a "platform" key (the pre-platform
        # layout) decodes onto the implicit homogeneous platform.
        schedule = find_feasible_schedule(fig1_graph, 2)
        data = schedule_to_dict(schedule)
        assert "platform" not in data  # degenerate platforms are omitted
        back = schedule_from_dict(data)
        assert back.platform.is_unit
        assert back.processors == 2
        assert schedule_to_dict(back) == data


class TestHeteroEncoding:
    def test_platform_schedule_round_trips(self, fig1_graph):
        from repro.core.platform import Platform

        platform = Platform.of(("big", 1), ("little", 1, Fraction(1, 2)))
        schedule = find_feasible_schedule(fig1_graph, platform)
        data = json.loads(json.dumps(schedule_to_dict(schedule)))
        assert data["platform"] == [
            ["big", "1/1", 1], ["little", "1/2", 1]
        ]
        back = schedule_from_dict(data)
        assert back.platform == platform
        assert [(e.job_index, e.processor, e.start) for e in back.entries] == [
            (e.job_index, e.processor, e.start) for e in schedule.entries
        ]

    def test_wcet_by_class_survives_graph_round_trip(self):
        wcets = dict(fig1_wcets())
        wcets["FilterA"] = {"big": Fraction(3, 10), "little": Fraction(3, 5)}
        graph = derive_task_graph(build_fig1_network(), wcets)
        data = json.loads(json.dumps(task_graph_to_dict(graph)))
        back = task_graph_from_dict(data)
        for j, b in zip(graph.jobs, back.jobs):
            assert b.wcet_by_class == j.wcet_by_class
            assert b.wcet == j.wcet
        assert any(j.wcet_by_class is not None for j in back.jobs)

    def test_tagged_platform_value_round_trips(self):
        from repro.core.platform import Platform
        from repro.io.json_io import value_from_jsonable, value_to_jsonable

        platform = Platform.of(("big", 2), ("little", 4, Fraction(1, 3)))
        encoded = json.loads(json.dumps(value_to_jsonable(platform)))
        assert value_from_jsonable(encoded) == platform

    def test_bad_platform_payloads_rejected(self):
        from repro.io.json_io import platform_from_jsonable

        with pytest.raises(FormatError):
            platform_from_jsonable([])
        with pytest.raises(FormatError):
            platform_from_jsonable([["big", "1/1"]])  # missing count
        with pytest.raises(FormatError):
            platform_from_jsonable("2xbig")
