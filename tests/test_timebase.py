"""Unit tests for the exact rational time base."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.core.timebase import (
    as_nonnegative_time,
    as_positive_time,
    as_time,
    frange,
    hyperperiod,
    rational_lcm,
    time_str,
)


class TestAsTime:
    def test_int(self):
        assert as_time(5) == Fraction(5)

    def test_float_uses_decimal_repr(self):
        assert as_time(0.1) == Fraction(1, 10)

    def test_float_point_three(self):
        assert as_time(0.3) == Fraction(3, 10)

    def test_string_fraction(self):
        assert as_time("2/3") == Fraction(2, 3)

    def test_string_decimal(self):
        assert as_time("1.5") == Fraction(3, 2)

    def test_fraction_passthrough(self):
        f = Fraction(7, 3)
        assert as_time(f) is f

    def test_negative_allowed(self):
        assert as_time(-3) == Fraction(-3)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            as_time(True)

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            as_time(object())


class TestPositivity:
    def test_positive_ok(self):
        assert as_positive_time("1/2") == Fraction(1, 2)

    def test_zero_rejected(self):
        with pytest.raises(ValueError, match="must be positive"):
            as_positive_time(0, "period")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            as_positive_time(-1)

    def test_nonnegative_allows_zero(self):
        assert as_nonnegative_time(0) == 0

    def test_nonnegative_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            as_nonnegative_time(-1, "offset")


class TestRationalLcm:
    def test_integers(self):
        assert rational_lcm(Fraction(200), Fraction(700)) == Fraction(1400)

    def test_fractions(self):
        assert rational_lcm(Fraction(1, 2), Fraction(1, 3)) == Fraction(1)

    def test_same(self):
        assert rational_lcm(Fraction(5), Fraction(5)) == Fraction(5)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            rational_lcm(Fraction(0), Fraction(1))

    @given(
        st.fractions(min_value="1/100", max_value=100),
        st.fractions(min_value="1/100", max_value=100),
    )
    def test_lcm_is_common_multiple(self, a, b):
        m = rational_lcm(a, b)
        assert (m / a).denominator == 1
        assert (m / b).denominator == 1

    @given(
        st.fractions(min_value="1/20", max_value=20),
        st.fractions(min_value="1/20", max_value=20),
    )
    def test_lcm_is_least(self, a, b):
        m = rational_lcm(a, b)
        # Any smaller common multiple would divide m; check m/2 is not one.
        half = m / 2
        assert (half / a).denominator != 1 or (half / b).denominator != 1


class TestHyperperiod:
    def test_paper_fig1_periods(self):
        # InputA..OutputB plus CoefB's server at 200 (Sec. III-A example).
        assert hyperperiod([200, 100, 200, 200, 200, 100, 200]) == 200

    def test_fms_reduced(self):
        assert hyperperiod([200, 200, 5000, 400, 1000]) == 10000

    def test_fms_full(self):
        assert hyperperiod([200, 200, 5000, 1600, 1000]) == 40000

    def test_rational_periods(self):
        assert hyperperiod(["1/2", "1/3"]) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            hyperperiod([])

    def test_single(self):
        assert hyperperiod([7]) == 7


class TestFormatting:
    def test_integer_rendering(self):
        assert time_str(200) == "200"

    def test_fraction_rendering(self):
        assert time_str("1/3") == "1/3"

    def test_frange_basic(self):
        assert frange(0, 1, "1/4") == [
            Fraction(0), Fraction(1, 4), Fraction(1, 2), Fraction(3, 4)
        ]

    def test_frange_empty(self):
        assert frange(5, 5, 1) == []

    def test_frange_requires_positive_step(self):
        with pytest.raises(ValueError):
            frange(0, 1, 0)
