#!/usr/bin/env python
"""Perf-trajectory runner for the E1-E10 benchmark suite.

Runs the same workloads the ``test_bench_e*`` modules exercise — task-graph
derivation, list scheduling, priority search, runtime simulation and the
determinism matrix — and writes a ``BENCH_<date>.json`` file with wall
times and problem sizes.  Committing one such file per perf-relevant PR
gives the repository a perf trajectory: future changes can be compared
against any past baseline with plain ``diff``/``jq``.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py                # full run
    PYTHONPATH=src python benchmarks/run_bench.py --fast         # smoke lane
    PYTHONPATH=src python benchmarks/run_bench.py --label seed \
        --output benchmarks/BENCH_2026-07-28_seed.json

The two headline cases for the tick-domain optimisation are
``e9_schedule_40s`` (list scheduling of the ~2.8k-job 40 s-hyperperiod FMS
graph) and ``fms_sim_100`` (100 frames of ``run_static_order`` on the
reduced FMS network).
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Tuple

from repro.analysis import check_determinism
from repro.apps import (
    build_fft_network,
    build_fig1_network,
    build_fms_network,
    fig1_stimulus,
    fig1_wcets,
    fft_stimulus,
    fft_wcets,
    fms_scenario,
    fms_stimulus,
    fms_wcets,
)
from repro.experiment import ScenarioMatrix, run_sweep
from repro.runtime import OverheadModel, jittered_execution, run_static_order
from repro.scheduling import (
    find_feasible_schedule,
    list_schedule,
    schedule_quality,
    search_priorities,
)
from repro.taskgraph import derive_task_graph

Case = Tuple[str, Callable[[bool], Tuple[Callable[[], object], Dict[str, object]]]]


# ----------------------------------------------------------------------
# Case definitions.  Each builder does the untimed setup and returns
# ``(timed_callable, metadata)``; only the callable is measured.
# ----------------------------------------------------------------------

def _case_e1_fig1_derivation(fast: bool):
    net = build_fig1_network()
    return lambda: derive_task_graph(net, 25), {"experiment": "E1"}


def _case_e2_fig4_schedule(fast: bool):
    graph = derive_task_graph(build_fig1_network(), 25)
    return lambda: find_feasible_schedule(graph, 2), {
        "experiment": "E2",
        "jobs": len(graph),
    }


def _case_e3_fft_schedule(fast: bool):
    graph = derive_task_graph(build_fft_network(), fft_wcets())
    return lambda: find_feasible_schedule(graph, 2), {
        "experiment": "E3",
        "jobs": len(graph),
    }


def _case_e4_fms_derivation(fast: bool):
    net = build_fms_network()
    wcets = fms_wcets()
    return lambda: derive_task_graph(net, wcets), {"experiment": "E4"}


def _case_e4_fms_schedule(fast: bool):
    graph = derive_task_graph(build_fms_network(), fms_wcets())
    return lambda: find_feasible_schedule(graph, 1), {
        "experiment": "E4",
        "jobs": len(graph),
    }


def _case_e6_determinism_fig1(fast: bool):
    net = build_fig1_network()
    frames = 2 if fast else 4
    stim = fig1_stimulus(frames)
    return (
        lambda: check_determinism(
            net, fig1_wcets(), frames, stim, (2, 3), ("alap", "arrival"), (0, 1)
        ),
        {"experiment": "E6", "frames": frames},
    )


def _case_e7_overhead_sim(fast: bool):
    net = build_fft_network()
    graph = derive_task_graph(net, fft_wcets())
    schedule = find_feasible_schedule(graph, 2)
    overheads = OverheadModel.mppa_like()
    frames = 4 if fast else 16
    stim = fft_stimulus([[k, k + 1j, -k, 0.5 * k] for k in range(frames)])
    return (
        lambda: run_static_order(net, schedule, frames, stim, overheads=overheads),
        {"experiment": "E7", "frames": frames, "jobs": len(graph)},
    )


def _case_e8_heuristics(fast: bool):
    graph = derive_task_graph(build_fms_network(), fms_wcets())

    def sweep():
        return [
            schedule_quality(graph, 1, name)
            for name in ("alap", "blevel", "deadline", "arrival")
        ]

    return sweep, {"experiment": "E8", "jobs": len(graph)}


def _case_e8_search(fast: bool):
    graph = derive_task_graph(build_fig1_network(), 25)
    iters = 200 if fast else 600
    return (
        lambda: search_priorities(graph, 1, seed=0, max_iterations=iters, restarts=2),
        {"experiment": "E8", "jobs": len(graph), "iterations": iters},
    )


def _case_e9_derive_40s(fast: bool):
    net = build_fms_network(reduced_hyperperiod=False)
    wcets = fms_wcets()
    return lambda: derive_task_graph(net, wcets), {"experiment": "E9"}


def _case_e9_schedule_40s(fast: bool):
    graph = derive_task_graph(build_fms_network(reduced_hyperperiod=False), fms_wcets())
    return lambda: find_feasible_schedule(graph, 1), {
        "experiment": "E9",
        "jobs": len(graph),
    }


def _case_e10_derive_fig1_40s(fast: bool):
    net = build_fig1_network()
    wcets = fig1_wcets()
    jobs = len(derive_task_graph(net, wcets, horizon=40_000))
    return lambda: derive_task_graph(net, wcets, horizon=40_000), {
        "experiment": "E10",
        "jobs": jobs,
    }


def _case_fms_sim_100(fast: bool):
    net = build_fms_network()
    graph = derive_task_graph(net, fms_wcets())
    schedule = find_feasible_schedule(graph, 1)
    frames = 10 if fast else 100
    return (
        lambda: run_static_order(net, schedule, frames),
        {"experiment": "E4/E9", "frames": frames, "jobs": len(graph)},
    )


def _case_fms_sim_jitter(fast: bool):
    net = build_fms_network()
    graph = derive_task_graph(net, fms_wcets())
    schedule = find_feasible_schedule(graph, 1)
    frames = 5 if fast else 25
    stim = fms_stimulus(net, graph.hyperperiod * frames)
    return (
        lambda: run_static_order(
            net, schedule, frames, stim, execution_time=jittered_execution(7)
        ),
        {"experiment": "E6", "frames": frames, "jobs": len(graph)},
    )


def _case_fms_sim_timing_100(fast: bool):
    """The records-only fast mode: identical JobRecord timing, no kernels."""
    net = build_fms_network()
    graph = derive_task_graph(net, fms_wcets())
    schedule = find_feasible_schedule(graph, 1)
    frames = 10 if fast else 100
    return (
        lambda: run_static_order(net, schedule, frames, records_only=True),
        {"experiment": "E4/E9", "frames": frames, "jobs": len(graph),
         "mode": "records_only"},
    )


def _case_fms_data_phase_100(fast: bool):
    """The data-phase fast path in its leanest full-pipeline form:
    timing + kernels with no record retention and no action trace —
    what observable-only sweeps (determinism matrices, scenario
    backends) pay per run."""
    net = build_fms_network()
    graph = derive_task_graph(net, fms_wcets())
    schedule = find_feasible_schedule(graph, 1)
    frames = 10 if fast else 100
    return (
        lambda: run_static_order(
            net, schedule, frames,
            collect_records=False, collect_trace=False,
        ),
        {"experiment": "E4/E9", "frames": frames, "jobs": len(graph),
         "mode": "collect_records=False collect_trace=False"},
    )


#: The 3x3 runtime-only FMS sweep: jitter seeds x overhead models.  The
#: sweep runner derives the 812-job graph and schedules it exactly once,
#: then runs every cell in the lean observer-streaming mode; the _naive
#: twin below re-derives, re-schedules and fully simulates per cell — the
#: per-cell loop a user would hand-write without the experiment layer.
_SWEEP_SEEDS = (0, 1, 2)
_SWEEP_OVERHEADS = (
    OverheadModel.none(),
    OverheadModel.mppa_like(),
    OverheadModel.create(5, 5),
)


def _case_fms_sweep_3x3(fast: bool):
    from repro.experiment.scenario import _jitter_model

    frames = 2 if fast else 10
    base = fms_scenario(n_frames=frames)
    matrix = ScenarioMatrix(
        base,
        {"jitter_seed": list(_SWEEP_SEEDS),
         "overheads": list(_SWEEP_OVERHEADS)},
    )
    # The schedulability-robustness question (misses/makespans under
    # jitter x overheads) needs only timing metrics, so the runner skips
    # the data phase per cell on top of the shared derivation + schedule.
    metrics = (
        "executed_jobs", "missed_jobs", "worst_lateness",
        "makespan", "frame_makespan_max",
    )

    def sweep():
        # Best-of-N timing: drop the process-global jitter-sampler cache
        # so every repeat pays cold sampling, exactly like the naive twin
        # constructing fresh samplers — the comparison then measures the
        # stage-reuse design, not warm global caches.
        _jitter_model.cache_clear()
        return run_sweep(matrix, metrics=metrics)

    return sweep, {
        "experiment": "sweep", "frames": frames, "cells": len(matrix),
    }


#: The multi-schedule-key FMS sweep for the parallel backend: processor
#: counts x jitter seeds.  Two processor counts mean two schedule-key
#: groups, the parallel dispatch unit — ``workers=2`` hands one group to
#: each spawned worker; the serial twin runs the identical matrix in
#: process (rows are bit-identical, pinned by tests/test_sweep_parallel).
#: On a single-CPU host the parallel lane measures pure dispatch overhead
#: (spawn + reimport + wire format); with >= 2 cores the cell phase
#: overlaps and the case shows the speedup.
_PAR_SWEEP_AXES = {
    "processors": [1, 2],
    "jitter_seed": [0, 1, 2],
}
_PAR_SWEEP_METRICS = (
    "executed_jobs", "missed_jobs", "worst_lateness", "makespan",
)


def _parallel_sweep_case(workers: int):
    def build(fast: bool):
        frames = 2 if fast else 25
        matrix = ScenarioMatrix(
            fms_scenario(n_frames=frames), dict(_PAR_SWEEP_AXES)
        )

        def sweep():
            result = run_sweep(
                matrix, metrics=_PAR_SWEEP_METRICS, workers=workers
            )
            assert result.stats.parallel_fallback is None
            assert result.stats.workers == min(
                workers, len(_PAR_SWEEP_AXES["processors"])
            )
            return result

        return sweep, {
            "experiment": "sweep", "frames": frames, "cells": len(matrix),
            "workers": workers,
        }

    return build


def _pool_sweep_case(warm: bool):
    """Resident SweepPool service, cold vs warm (ISSUE 7 headline).

    Cold times a full one-shot service cycle — open a pool, spawn the
    workers, submit, close — i.e. what ``run_sweep(workers=2)`` pays per
    sweep.  Warm holds one resident pool open (built and pre-warmed
    outside the timing loop) and times only the resubmission: no spawn,
    and the workers' warm per-schedule-key caches make the sweep pay
    zero new derivations/scheduling passes, which the case asserts via
    the ``SweepStats`` counters.  Warm beats cold even on a single-CPU
    host — the win is skipped spawn + skipped stage work, not core
    parallelism.
    """

    def build(fast: bool):
        from repro.experiment import SweepPool

        frames = 2 if fast else 25
        matrix = ScenarioMatrix(
            fms_scenario(n_frames=frames), dict(_PAR_SWEEP_AXES)
        )

        if warm:
            pool = SweepPool(workers=2)
            pool.submit(matrix, _PAR_SWEEP_METRICS).result()  # pre-warm

            def sweep():
                result = pool.submit(matrix, _PAR_SWEEP_METRICS).result()
                assert result.stats.pool_reused
                assert result.stats.derivations_computed == 0
                assert result.stats.schedules_computed == 0
                assert result.stats.warm_group_hits == 2
                return result

            sweep.cleanup = pool.close
        else:

            def sweep():
                with SweepPool(workers=2) as pool:
                    result = pool.submit(
                        matrix, _PAR_SWEEP_METRICS
                    ).result()
                assert not result.stats.pool_reused
                assert result.stats.derivations_computed == 2
                return result

        return sweep, {
            "experiment": "sweep", "frames": frames, "cells": len(matrix),
            "workers": 2, "mode": "warm resident pool" if warm
            else "cold pool per sweep",
        }

    return build


def _case_fms_sweep_resume(fast: bool):
    """Checkpoint-store resume: the matrix is prepopulated (untimed) into
    a content-addressed store, then the timed sweep resolves every cell
    as a store hit — measuring the read path (scenario hashing + row
    decode) a resumed or chained sweep pays instead of the simulator."""
    from repro.experiment import MemorySweepStore

    frames = 2 if fast else 10
    matrix = ScenarioMatrix(
        fms_scenario(n_frames=frames),
        {"jitter_seed": list(_SWEEP_SEEDS)},
    )
    store = MemorySweepStore()
    run_sweep(matrix, metrics=_PAR_SWEEP_METRICS, store=store)

    def resume():
        result = run_sweep(matrix, metrics=_PAR_SWEEP_METRICS, store=store)
        assert result.stats.store_hits == len(matrix)
        assert result.stats.runs == 0
        return result

    return resume, {
        "experiment": "sweep", "frames": frames, "cells": len(matrix),
        "mode": "all-hit store resume",
    }


def _case_fms_hetero_sweep(fast: bool):
    """Heterogeneous-platform sweep (ISSUE 10): a 2-class platform axis
    over the FMS case study.  WCET tables key on processor-class *names*,
    so the derivation is platform-independent — both platform cells share
    one derivation and the axis only pays per-platform scheduling passes,
    which the case asserts via the ``SweepStats`` counters.  Cells run in
    the lean timing-only mode, so the case isolates what heterogeneity
    adds to the schedule stage."""
    from repro.core.platform import Platform

    frames = 2 if fast else 10
    platforms = [
        Platform.homogeneous(2),
        Platform.of(("big", 1), ("little", 1, "1/2")),
    ]
    matrix = ScenarioMatrix(
        fms_scenario(n_frames=frames),
        {"platform": platforms, "jitter_seed": [0, 1]},
    )

    def sweep():
        result = run_sweep(matrix, metrics=_PAR_SWEEP_METRICS)
        assert not result.failed_rows
        assert result.stats.derivations_computed == 1
        assert result.stats.schedules_computed == len(platforms)
        return result

    return sweep, {
        "experiment": "sweep", "frames": frames, "cells": len(matrix),
        "mode": "2-class platform axis, shared derivation",
    }


def _case_fms_sweep_3x3_naive(fast: bool):
    frames = 2 if fast else 10
    net = build_fms_network()
    wcets = fms_wcets()
    stim = fms_stimulus(net, 10_000 * frames)

    def naive():
        out = []
        for seed in _SWEEP_SEEDS:
            for ov in _SWEEP_OVERHEADS:
                graph = derive_task_graph(net, wcets)
                schedule = find_feasible_schedule(graph, 1)
                result = run_static_order(
                    net, schedule, frames, stim,
                    execution_time=jittered_execution(seed), overheads=ov,
                )
                out.append(result.makespan())
        return out

    return naive, {
        "experiment": "sweep", "frames": frames,
        "cells": len(_SWEEP_SEEDS) * len(_SWEEP_OVERHEADS),
        "mode": "per-cell derive+schedule+run",
    }


CASES: List[Case] = [
    ("e1_fig1_derivation", _case_e1_fig1_derivation),
    ("e2_fig4_schedule", _case_e2_fig4_schedule),
    ("e3_fft_schedule", _case_e3_fft_schedule),
    ("e4_fms_derivation", _case_e4_fms_derivation),
    ("e4_fms_schedule", _case_e4_fms_schedule),
    ("e6_determinism_fig1", _case_e6_determinism_fig1),
    ("e7_overhead_sim", _case_e7_overhead_sim),
    ("e8_heuristics", _case_e8_heuristics),
    ("e8_search", _case_e8_search),
    ("e9_derive_40s", _case_e9_derive_40s),
    ("e9_schedule_40s", _case_e9_schedule_40s),
    ("e10_derive_fig1_40s", _case_e10_derive_fig1_40s),
    ("fms_sim_100", _case_fms_sim_100),
    ("fms_sim_jitter", _case_fms_sim_jitter),
    ("fms_sim_timing_100", _case_fms_sim_timing_100),
    ("fms_data_phase_100", _case_fms_data_phase_100),
    ("fms_sweep_3x3", _case_fms_sweep_3x3),
    ("fms_sweep_3x3_naive", _case_fms_sweep_3x3_naive),
    ("fms_sweep_resume", _case_fms_sweep_resume),
    ("fms_hetero_sweep", _case_fms_hetero_sweep),
    ("fms_sweep_2x3_serial", _parallel_sweep_case(workers=1)),
    ("fms_sweep_2x3_workers2", _parallel_sweep_case(workers=2)),
    ("fms_sweep_pool_cold", _pool_sweep_case(warm=False)),
    ("fms_sweep_pool_warm", _pool_sweep_case(warm=True)),
]


def run_suite(fast: bool, repeats: int) -> Dict[str, Dict[str, object]]:
    results: Dict[str, Dict[str, object]] = {}
    for name, builder in CASES:
        fn, meta = builder(fast)
        walls = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            walls.append(time.perf_counter() - t0)
        entry = {"wall_s": round(min(walls), 6), "repeats": repeats, **meta}
        results[name] = entry
        print(f"{name:24s} {entry['wall_s']*1000:10.2f} ms  {meta}")
        # Cases holding live resources across repeats (a warm resident
        # pool, say) attach a cleanup hook to the timed callable.
        cleanup = getattr(fn, "cleanup", None)
        if cleanup is not None:
            cleanup()
    return results


def diff_snapshots(
    path_a: str, path_b: str, tolerance: "float | None" = None
) -> int:
    """Per-case wall-time comparison of two BENCH_*.json snapshots.

    Delegates to the shared comparison engine
    (:mod:`repro.analysis.compare`) — the same one behind
    ``python -m repro diff``.  With *tolerance* ``None`` (the default,
    and the historical behaviour) the table is report-only; with a
    tolerance set, a case slowing down past it fails with exit 1.
    Snapshots from hosts with different CPU counts refuse to compare
    (exit 2): the parallel/pool lanes measure core overlap, so a 1-CPU
    number against a multi-core number is noise presented as a trend.
    """
    from repro.analysis.compare import compare_files

    comparison = compare_files(path_a, path_b, tolerance=tolerance)
    for warning in comparison.warnings:
        print(warning, file=sys.stderr)
    if comparison.refusal is not None:
        print(comparison.refusal, file=sys.stderr)
        return comparison.exit_code
    for line in comparison.lines:
        print(line)
    for line in comparison.regressions:
        print(f"! regression: {line}", file=sys.stderr)
    return comparison.exit_code


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="smoke mode: 1 repeat, reduced frame counts")
    parser.add_argument("--label", default="dev",
                        help="tag stored in the JSON (e.g. 'seed', 'pr1')")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per case (best-of); default 3, 1 in --fast")
    parser.add_argument("--output", default=None,
                        help="output path; default benchmarks/BENCH_<date>.json "
                             "(omitted entirely in --fast mode unless given)")
    parser.add_argument("--diff", nargs=2, metavar=("A.json", "B.json"),
                        default=None,
                        help="compare two snapshots instead of running; "
                             "refuses snapshots from hosts with different "
                             "cpu counts")
    parser.add_argument("--tolerance", type=float, default=None,
                        metavar="FRACTION",
                        help="with --diff: relative slowdown allowed before "
                             "exit 1 (default: report only)")
    args = parser.parse_args(argv)

    if args.diff is not None:
        return diff_snapshots(*args.diff, tolerance=args.tolerance)
    if args.tolerance is not None:
        parser.error("--tolerance only makes sense with --diff")
    if args.repeats is not None and args.repeats < 1:
        parser.error("--repeats must be >= 1")
    repeats = args.repeats or (1 if args.fast else 3)
    results = run_suite(args.fast, repeats)

    payload = {
        "date": datetime.date.today().isoformat(),
        "label": args.label,
        "fast": args.fast,
        "python": platform.python_version(),
        # Parallel-sweep cases only overlap their groups when this is > 1;
        # on a single CPU they measure pure dispatch overhead.
        "cpus": os.cpu_count(),
        # cpus alone can't tell two different machines apart; the
        # hostname pins which box a trajectory point came from.
        "host": platform.node(),
        "cases": results,
    }
    out = args.output
    if out is None and not args.fast:
        out = str(
            Path(__file__).parent
            / f"BENCH_{datetime.date.today().isoformat()}.json"
        )
    if out:
        Path(out).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
