"""E1 — Fig. 1 + Fig. 3: task-graph derivation of the running example.

Regenerates the paper's Fig. 3 task graph from the Fig. 1 network with
uniform 25 ms WCETs and reports every number the figure shows: hyperperiod,
job count, the (A, D, C) tuples, the redundant edge removed by transitive
reduction, and the load (=> 2 processors necessary).
"""

import pytest

from repro.analysis import ExperimentReport
from repro.apps import build_fig1_network, fig1_wcets
from repro.taskgraph import derive_task_graph, task_graph_load


@pytest.mark.experiment("E1")
def test_fig3_taskgraph_derivation(benchmark):
    net = build_fig1_network()
    wcets = fig1_wcets()

    graph = benchmark(derive_task_graph, net, wcets)

    load = task_graph_load(graph)
    report = ExperimentReport("E1 task-graph derivation", "Fig. 1 + Fig. 3")
    report.add("hyperperiod H (ms)", 200, int(graph.hyperperiod))
    report.add("jobs", 10, len(graph))
    report.add("CoefB server jobs", 2, len(graph.jobs_of("CoefB")))
    report.add(
        "CoefB[1] (A,D,C)", "(0,200,25)",
        graph.job("CoefB[1]").describe().split(" ", 1)[1],
        "d' = 700-200 = 500, truncated to H",
    )
    report.add(
        "FilterA[2] (A,D,C)", "(100,200,25)",
        graph.job("FilterA[2]").describe().split(" ", 1)[1],
    )
    report.add(
        "InputA->NormA edge", "redundant (removed)",
        "absent" if not graph.has_edge_named("InputA[1]", "NormA[1]") else "PRESENT",
        "path via FilterA[1]",
    )
    report.add("edges after reduction", "~9 (figure)", graph.edge_count)
    report.add("load", "-", f"{float(load.load):.3g}")
    report.add("ceil(load) processors", 2, load.min_processors)
    report.show()

    assert len(graph) == 10
    assert load.min_processors == 2
    assert not graph.has_edge_named("InputA[1]", "NormA[1]")


@pytest.mark.experiment("E1")
def test_fig3_dense_rule_derivation(benchmark):
    """Timing of the literal quadratic step-3 rule (cross-check path)."""
    net = build_fig1_network()
    graph = benchmark(derive_task_graph, net, 25, None, True)
    assert len(graph) == 10
