#!/usr/bin/env python3
"""Quickstart: describe an FPPN experiment once, then ask for any stage.

The scenario-first API wraps the paper's whole pipeline in two objects:

* a ``Scenario`` — a frozen description of one run (network factory,
  WCETs, processors, execution-time model, overheads, stimulus, frames);
* an ``Experiment`` — a facade that lazily computes and caches each stage:
  zero-delay reference (Section II-B), task-graph derivation (III-A),
  list scheduling (III-B), online static-order execution (IV) and the
  mechanical determinism check (Prop. 2.1).

The loose stage functions (``derive_task_graph``,
``find_feasible_schedule``, ``run_static_order``, ...) still exist and are
what the facade calls underneath — use whichever altitude fits.

Run:  python examples/quickstart.py
"""

import json
import pathlib
import tempfile

from repro import Experiment, Scenario, is_no_data, miss_summary, schedule_gantt
from repro.runtime import MetricsObserver
from repro.taskgraph import task_graph_load


def sample_source(ctx):
    """Produce one sample per 100 ms period (the invocation count as data)."""
    ctx.write("raw", float(ctx.k))


def smoother(ctx):
    """Exponential smoothing at twice the source rate."""
    x = ctx.read("raw")
    state = ctx.get("state", 0.0)
    if not is_no_data(x):
        state = 0.75 * state + 0.25 * x
        ctx.assign("state", state)
    ctx.write("smooth", state)


def logger(ctx):
    """Emit every other smoothed value as an external output sample."""
    last = None
    while True:
        v = ctx.read("smooth")
        if is_no_data(v):
            break
        last = v
    ctx.write_output(last, "log")


def build_network():
    """Author the FPPN: processes, channels, functional priorities."""
    from repro import ChannelKind, Network

    net = Network("quickstart")
    net.add_periodic("source", period=100, kernel=sample_source)
    net.add_periodic("smoother", period=50, kernel=smoother)
    net.add_periodic("logger", period=200, kernel=logger)
    net.connect("source", "smoother", "raw", kind=ChannelKind.FIFO)
    net.connect("smoother", "logger", "smooth", kind=ChannelKind.FIFO)
    net.add_priority_chain("source", "smoother", "logger")
    net.add_external_output("logger", "log")
    net.validate()
    return net


def main() -> None:
    # -- 1. the scenario: the entire experiment as one value ---------------
    scenario = Scenario(
        workload=build_network,  # any zero-arg factory, or a registered name
        wcet={"source": 10, "smoother": 15, "logger": 5},
        processors=1,
        n_frames=3,
        label="quickstart",
    )
    exp = Experiment(scenario)
    print(f"scenario: {scenario.describe()}")

    # -- 2. reference semantics (zero-delay, Section II-B) -----------------
    reference = exp.reference()
    print(f"zero-delay reference executed {reference.job_count} jobs")
    print(f"logged samples: {reference.output_values('log')}")

    # -- 3. task graph (Section III-A) — derived once, cached --------------
    graph = exp.task_graph()
    load = task_graph_load(graph)
    print(
        f"task graph: {len(graph)} jobs / {graph.edge_count} edges per "
        f"{graph.hyperperiod} ms frame, load {float(load.load):.3f} "
        f"=> >= {load.min_processors} processor(s)"
    )

    # -- 4. compile-time schedule (Section III-B) --------------------------
    schedule = exp.schedule()
    print("static schedule (one frame):")
    print(schedule_gantt(schedule))

    # -- 5. online static-order execution (Section IV) ---------------------
    # Observers attach to the run; late-attached observers replay the
    # cached result instead of re-simulating.
    metrics = MetricsObserver()
    result = exp.run(observers=[metrics])
    summary = metrics.miss_summary()
    print(
        f"runtime: {summary.executed_jobs} jobs over {result.frames} frames, "
        f"{summary.missed_jobs} deadline misses"
    )
    assert summary == miss_summary(result)  # post-hoc replay agrees
    assert result.observable() == reference.observable(), "determinism violated!"
    print("runtime outputs identical to the zero-delay reference — Prop. 2.1 holds")

    print("kernel spans per process:")
    for name, spans in metrics.kernel_span_stats().items():
        print(
            f"  {name:10s} {spans.jobs} jobs, busy {spans.total_busy} ms, "
            f"max {spans.max_span} ms, mean {spans.mean_span} ms"
        )

    # -- 6. scenario variations are one .replace() away --------------------
    # A records-only variant skips the kernels entirely but produces
    # bit-identical job timing; derivation and scheduling stay cached.
    timing_exp = Experiment(scenario.replace(records_only=True), cache=exp.cache)
    assert timing_exp.run().records == result.records
    print("records-only variant reproduced identical job timing, no kernels run")

    # -- 7. the mechanical determinism matrix ------------------------------
    report = exp.check_determinism(processor_counts=(1, 2), jitter_seeds=(0,))
    assert report.deterministic
    print(report.summary())

    # -- 8. sweeps survive failures and resume from checkpoints ------------
    # A failing cell becomes a structured error row on a *partial* table
    # (type, message, pipeline stage, retry count) instead of aborting the
    # sweep; `on_error="raise"` restores abort-on-first-failure, parallel
    # sweeps additionally retry crashed/timed-out worker groups.  With a
    # store attached, healthy rows are persisted under each scenario's
    # content hash, so re-running the matrix recomputes only what's
    # missing or failed.  A FaultPlan injects deterministic failures —
    # here a raising kernel in cell 1 — to make the recovery observable.
    from repro import (
        FaultPlan,
        MemorySweepStore,
        ScenarioMatrix,
        register_workload,
        run_sweep,
    )

    register_workload("quickstart", build_network)
    matrix = ScenarioMatrix(
        scenario.replace(workload="quickstart"),  # names are hashable
        {"jitter_seed": [0, 1, 2]},
    )
    store = MemorySweepStore()  # SqliteSweepStore(path) for durable files
    partial = run_sweep(
        matrix, metrics=("executed_jobs", "makespan"),
        store=store, faults=FaultPlan(raise_at=(1,)),
    )
    assert len(partial.rows) == 2 and partial.stats.failed_cells == 1
    print("sweep survived an injected fault:")
    print(partial.table())
    resumed = run_sweep(matrix, metrics=("executed_jobs", "makespan"),
                        store=store)
    assert resumed.stats.store_hits == 2 and resumed.stats.runs == 1
    print(
        f"resume recomputed only the failed cell "
        f"(hits {resumed.stats.store_hits}, runs {resumed.stats.runs})"
    )

    # -- 9. a resident sweep service keeps workers and caches warm ---------
    # `run_sweep(workers=N)` spawns a fresh pool per call; a `SweepPool`
    # spawns its workers once and keeps them — and their per-schedule-key
    # pipeline caches — alive across many `submit()` calls.  Rows stream
    # back through `on_row` as cells complete, and a resubmitted matrix
    # pays zero new derivations or scheduling passes (the SweepStats
    # counters prove it).  Workers re-import repro in a fresh process, so
    # the service takes only scenarios they can reconstruct — the built-in
    # app workloads qualify; "quickstart" above is registered only here
    # and would be refused.  See examples/sweep_service.py for the full
    # service workflow.
    from repro import SweepPool
    from repro.apps import fig1_scenario

    service_matrix = ScenarioMatrix(
        fig1_scenario(n_frames=1),
        {"processors": [2, 3], "jitter_seed": [0, 1]},
    )
    with SweepPool(workers=2) as pool:
        streamed = []
        cold = pool.submit(
            service_matrix, ("executed_jobs", "makespan"),
            on_row=streamed.append,
        ).result()
        assert len(streamed) == len(cold.rows)
        warm = pool.submit(
            service_matrix, ("executed_jobs", "makespan")
        ).result()
    assert warm.stats.pool_reused and warm.stats.derivations_computed == 0
    assert warm.rows == cold.rows
    print(
        f"resident pool: {len(streamed)} rows streamed; warm resubmit hit "
        f"{warm.stats.warm_group_hits} cached groups, 0 new derivations"
    )

    # -- 10. the CLI and live telemetry ------------------------------------
    # `python -m repro` drives all of the above from JSON configs:
    #
    #   python -m repro run   examples/fig1_run.json   --spans spans.json
    #   python -m repro sweep examples/fig1_sweep.json --workers 2 \
    #       --store sweep.db --progress
    #   python -m repro diff  baseline.json candidate.json --tolerance 0.01
    #
    # `diff` exits 1 past tolerance (the CI perf gate) and 2 when the
    # files are not comparable.  The observers behind `--progress` and
    # `--spans` are ordinary library objects too: SpanObserver turns a
    # run into an OTel-style span tree, ProgressObserver renders sweep
    # rows and pool milestones as they happen.
    import io as _io

    from repro.cli import main as repro_main
    from repro.io.json_io import scenario_to_dict
    from repro.runtime import ProgressObserver, SpanObserver

    spans = SpanObserver()
    Experiment(fig1_scenario(n_frames=1)).run(observers=[spans])
    assert spans.spans[0].kind == "run"  # parents the kernel spans
    print(f"span tree: {len(spans.spans)} spans, root "
          f"{spans.spans[0].name!r} ending at {spans.spans[0].end}")

    ticker = ProgressObserver(
        total_cells=len(service_matrix), stream=_io.StringIO()
    )
    run_sweep(service_matrix, ("executed_jobs",), on_row=ticker.on_row)
    print(f"progress sink saw {ticker.rows_seen} rows live")

    with tempfile.TemporaryDirectory() as tmp:
        config = pathlib.Path(tmp) / "run.json"
        config.write_text(json.dumps({
            "format": "fppn-config", "version": 1,
            "scenario": scenario_to_dict(fig1_scenario(n_frames=1)),
            "metrics": ["executed_jobs", "makespan"],
        }))
        out = pathlib.Path(tmp) / "out.json"
        assert repro_main(["run", str(config), "-o", str(out)]) == 0
        document = json.loads(out.read_text())
    assert document["format"] == "fppn-sweep" and len(document["rows"]) == 1
    print("CLI round trip: config -> fppn-sweep document, 1 row")

    # -- 11. served sweeps: one warm pool, many remote clients -------------
    # A SweepServer exposes a shared SweepPool (and optionally a shared
    # SQLite store) over newline-delimited JSON-RPC on TCP.  From the
    # shell the two halves are
    #
    #   python -m repro serve examples/sweep_server.json --ready-file addr
    #   python -m repro sweep examples/fig1_sweep.json \
    #       --server "$(cat addr)" --progress
    #
    # and the served table is bit-identical to the local one — exact
    # Fractions survive the tagged wire codecs.  Submissions carry a
    # per-connection client tag; the pool's pending queue round-robins
    # across tags, so a huge matrix from one client cannot starve
    # another's quick question.  The same round trip in-process:
    from repro.service import ServiceClient, SweepServer

    with SweepServer(workers=2) as server:
        host, port = server.address
        with ServiceClient(host, port, client="quickstart") as remote:
            assert remote.ping()
            served = remote.run_sweep(
                service_matrix, ("executed_jobs", "makespan"),
                on_row=lambda row: None,  # rows stream live, like on_row
            )
    assert served.rows == cold.rows  # bit-identical to the local sweep
    print(
        f"served sweep: {len(served.rows)} rows over TCP, "
        f"bit-identical to the in-process table"
    )

    # -- 12. heterogeneous platforms: processor classes as a sweep axis ----
    # A Platform is an ordered multiset of named processor classes, each
    # with an exact rational speed (speed 1/2 runs every job twice as
    # long); per-process WCET *tables* pin class-specific values that
    # override the speed scaling.  `Platform.homogeneous(m)` is the
    # degenerate platform — bit-identical to `processors=m` — and
    # platforms are hashable, so they sweep like any other axis.  WCET
    # tables are keyed by class *name*, which keeps the derivation
    # platform-independent: every platform cell below shares one task
    # graph and pays only its own scheduling pass.
    from repro.core.platform import Platform

    big_little = Platform.of(("big", 1), ("little", 1, "1/2"))
    hetero_matrix = ScenarioMatrix(
        fig1_scenario(n_frames=1),
        {"platform": [Platform.homogeneous(2), big_little]},
    )
    hetero = run_sweep(hetero_matrix, metrics=("makespan", "executed_jobs"))
    assert not hetero.failed_rows
    assert hetero.stats.derivations_computed == 1  # shared across platforms
    assert hetero.stats.schedules_computed == 2  # one per platform
    print(f"platform sweep over [2xcpu, {big_little}]:")
    print(hetero.table())
    # See examples/hetero_sweep.py for WCET tables, processor identities
    # on job records, and the exact speed-scaling guarantee.


if __name__ == "__main__":
    main()
