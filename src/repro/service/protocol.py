"""The sweep service wire protocol: newline-delimited JSON-RPC 2.0.

Every message is one JSON object on one ``\\n``-terminated line —
requests and responses carry an ``id``, server-to-client notifications
do not.  Payload values travel through the :mod:`repro.io.json_io`
tagged codecs, so exact rationals (`$frac`), complex FFT samples
(`$complex`) and the rest of the library's value vocabulary survive the
wire losslessly; the served rows are bit-identical to an in-process
sweep.

Methods (client to server):

``ping``
    Liveness probe; responds ``{"pong": true}``.
``submit``
    Params: ``matrix`` (``fppn-matrix`` document), ``metrics`` (list of
    names), optional ``faults`` (fault-plan dict), ``on_error``
    (``"capture"``/``"raise"``), ``client`` (fair-scheduling tag).
    Responds with the new ticket id and its status snapshot.
``status``
    Params: ``ticket``.  Responds with a ticket-status dict.
``stream``
    Params: ``ticket``.  The *response* arrives when the sweep
    finishes, carrying the final ``fppn-sweep`` document; until then
    the server interleaves ``sweep.row`` and ``sweep.event``
    notifications on the connection.  A failed ``on_error="raise"``
    sweep answers with error code ``SWEEP_FAILED`` instead.
``cancel``
    Params: ``ticket``.  Withdraws not-yet-dispatched groups; responds
    ``{"cancelled": bool, "status": {...}}``.
``shutdown``
    Responds ``{"ok": true}``, then stops the server.

Notifications (server to client):

``sweep.row``
    Params: ``ticket`` plus one encoded row (cell, metrics or error).
``sweep.event``
    Params: ``ticket`` plus one encoded
    :class:`~repro.experiment.PoolEvent`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping, Optional, Tuple

from ..errors import ProtocolError
from ..experiment.sweep import SweepCellError, SweepRow
from ..io.json_io import value_from_jsonable, value_to_jsonable

__all__ = [
    "JSONRPC_VERSION",
    "MAX_LINE_BYTES",
    "PARSE_ERROR",
    "INVALID_REQUEST",
    "METHOD_NOT_FOUND",
    "INVALID_PARAMS",
    "INTERNAL_ERROR",
    "SWEEP_FAILED",
    "encode",
    "decode_line",
    "request",
    "notification",
    "response",
    "error_response",
    "check_request",
    "sweep_row_to_wire",
    "sweep_row_from_wire",
]

JSONRPC_VERSION = "2.0"

#: Per-line ceiling for both directions.  A final ``fppn-sweep``
#: document for a large matrix is the biggest single message; 64 MiB is
#: far beyond any sweep this library runs while still bounding a
#: malformed peer.
MAX_LINE_BYTES = 64 * 1024 * 1024

# JSON-RPC 2.0 standard error codes, plus one application code.
PARSE_ERROR = -32700
INVALID_REQUEST = -32600
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
INTERNAL_ERROR = -32603
#: The sweep itself failed (``on_error="raise"`` with a failing cell).
#: Clients surface this as :class:`~repro.errors.SweepError`, exactly
#: like the in-process path.
SWEEP_FAILED = -32000


def encode(message: Mapping[str, Any]) -> bytes:
    """One wire line: compact JSON, newline-terminated.

    Keys are **not** sorted: axis order in a matrix document is
    semantic (it fixes the cell product order, hence row order), so the
    wire must preserve insertion order end to end.
    """
    return json.dumps(
        message, separators=(",", ":")
    ).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one received line into a message object."""
    try:
        message = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"unparseable wire line: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"wire message must be a JSON object, got "
            f"{type(message).__name__}"
        )
    return message


def request(
    method: str, params: Optional[Mapping[str, Any]], rid: int
) -> Dict[str, Any]:
    message: Dict[str, Any] = {
        "jsonrpc": JSONRPC_VERSION, "id": rid, "method": method,
    }
    if params is not None:
        message["params"] = dict(params)
    return message


def notification(
    method: str, params: Mapping[str, Any]
) -> Dict[str, Any]:
    return {
        "jsonrpc": JSONRPC_VERSION, "method": method, "params": dict(params),
    }


def response(rid: Any, result: Any) -> Dict[str, Any]:
    return {"jsonrpc": JSONRPC_VERSION, "id": rid, "result": result}


def error_response(rid: Any, code: int, message: str) -> Dict[str, Any]:
    return {
        "jsonrpc": JSONRPC_VERSION,
        "id": rid,
        "error": {"code": code, "message": message},
    }


def check_request(
    message: Mapping[str, Any],
) -> Tuple[str, Dict[str, Any], Any]:
    """Validate an incoming request; returns (method, params, id).

    Raises :class:`~repro.errors.ProtocolError` on shape violations —
    the server maps that to an ``INVALID_REQUEST`` error response.
    """
    if message.get("jsonrpc") != JSONRPC_VERSION:
        raise ProtocolError(
            f"missing/unsupported jsonrpc version "
            f"{message.get('jsonrpc')!r}"
        )
    method = message.get("method")
    if not isinstance(method, str) or not method:
        raise ProtocolError("request needs a non-empty 'method' string")
    rid = message.get("id")
    if rid is None:
        raise ProtocolError(
            "client notifications are not part of this protocol — "
            "every request needs an 'id'"
        )
    params = message.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError("'params' must be an object when present")
    return method, params, rid


# ---------------------------------------------------------------------------
# row payloads — the streaming unit (final tables use the fppn-sweep
# document from json_io; a live row travels alone)
# ---------------------------------------------------------------------------
def sweep_row_to_wire(row: SweepRow) -> Dict[str, Any]:
    """Encode one row — healthy (metrics) or failed (error record)."""
    out: Dict[str, Any] = {
        "cell": {
            name: value_to_jsonable(v) for name, v in row.cell.items()
        },
    }
    if row.error is not None:
        out["error"] = {
            "type": row.error.error_type,
            "message": row.error.message,
            "stage": row.error.stage,
            "retries": row.error.retries,
        }
    else:
        out["metrics"] = {
            name: value_to_jsonable(v) for name, v in row.metrics.items()
        }
    return out


def sweep_row_from_wire(data: Mapping[str, Any]) -> SweepRow:
    """Inverse of :func:`sweep_row_to_wire` (``result`` never travels)."""
    cell = {
        name: value_from_jsonable(v)
        for name, v in data.get("cell", {}).items()
    }
    error = data.get("error")
    if error is not None:
        return SweepRow(
            cell=cell,
            metrics={},
            error=SweepCellError(
                error_type=error["type"],
                message=error["message"],
                stage=error.get("stage", "run"),
                retries=int(error.get("retries", 0)),
            ),
        )
    return SweepRow(
        cell=cell,
        metrics={
            name: value_from_jsonable(v)
            for name, v in data.get("metrics", {}).items()
        },
    )
