"""Multiprocessor runtime simulator executing the static-order policy.

This is the library's substitute for the paper's MPPA/Linux runtime
(Section V): a deterministic discrete-event simulation of ``M`` processors
executing the frame-periodic static-order policy of Section IV, including:

* invocation synchronisation (periodic invocations, early/absent sporadic
  invocations with false-job marking),
* precedence synchronisation against task-graph predecessors,
* per-processor mutual exclusion in static-schedule order,
* the frame-arrival overhead model of Section V-A,
* actual execution times that may differ from WCETs (jitter injection) —
  the policy must stay correct because it synchronises instead of trusting
  the static start times (Prop. 4.1).

The executor is split into a **timing core** and pluggable **consumers**:

1. **Timing phase** (:meth:`MultiprocessorExecutor._timing_phase`) — per
   frame, job starts/ends are resolved in a topological pass over the
   combined DAG (precedence edges + per-processor chains + invocation
   floors).  The combined relation is acyclic because a feasible static
   schedule orders both edge kinds by start time.  The pass runs entirely
   in the **integer tick domain** (:mod:`repro.core.ticks`): all timing
   inputs — hyperperiod, arrivals, overheads, bound sporadic arrival
   times, process deadlines and the per-instance execution durations — are
   mapped once per run to exact integer ticks, so the ``max``/``+``
   recurrence per job instance costs machine-integer operations.  The
   resulting :class:`JobRecord` timestamps are converted back to exact
   rationals (bit-identical to a pure-Fraction simulation) and **emitted
   as events** to the observers of :mod:`repro.runtime.observers`.
2. **Data phase** (:meth:`MultiprocessorExecutor._data_phase`) — the
   kernels of all *true* jobs run in ``(start, frame, <J index)`` order
   against fresh channel states.  Jobs sharing a channel can never overlap
   (they are precedence-ordered and the policy enforces it), so
   atomic-at-start execution reproduces the real interleaving; the
   resulting channel write sequences are the Prop. 2.1 observable.

Two fast modes drop work a caller does not need: ``records_only=True``
skips the data phase entirely (no ``JobContext``, no kernel dispatch —
timing-only runs with identical :class:`JobRecord` streams), and
``collect_records=False`` skips record retention — and record
construction altogether when no observer listens, which is how the
determinism matrix runs (it only compares data-phase observables).
"""

from __future__ import annotations

import gc
import random
from dataclasses import dataclass, field
from itertools import chain
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import RuntimeModelError
from ..core.channels import ChannelState, ExternalOutputState
from ..core.ticks import TickDomain, fraction_from_ratio
from ..core.invocations import Stimulus
from ..core.network import Network
from ..core.process import JobContext, KernelBehavior
from ..core.timebase import Time, TimeLike, as_positive_time, as_time
from ..core.trace import LazyTrace, Trace
from ..core.trusted import check_trusted_constructor
from ..taskgraph.graph import TaskGraph
from ..taskgraph.jobs import Job
from ..scheduling.schedule import StaticSchedule
from .observers import _DATA_HOOKS, _overrides, ExecutionObserver, RunMeta
from .overheads import OverheadModel
from .static_order import ArrivalBinding, FramePlan

# Hot-loop aliases for the trusted ``__dict__``-installing constructions
# (records in the timing phase, job markers in the data phase); the literal
# field shapes are cross-checked at import time here and in
# :mod:`repro.core.process`.
_obj_new = object.__new__
_obj_setattr = object.__setattr__

ExecutionTimeSpec = Union[
    None,
    Mapping[str, TimeLike],
    Callable[[Job, int], TimeLike],
]


def wcet_execution(job: Job, frame: int) -> Time:
    """The default execution-time model: every job takes exactly its WCET."""
    return job.wcet


def jittered_execution(
    seed: int, low_fraction: float = 0.5
) -> Callable[[Job, int], Time]:
    """Deterministic pseudo-random execution times in ``[low*C, C]``.

    The sample depends only on ``(seed, process, k, frame)``, so repeated
    runs with the same seed are identical — which the determinism tests rely
    on when comparing *different schedules* under the *same* jitter.

    A single reseeded :class:`random.Random` instance is hoisted out of the
    per-sample path (reseeding produces exactly the same generator state as
    constructing ``random.Random(key)``), and samples are memoised per
    ``(process, k, frame)``, so determinism sweeps that replay the same
    jitter against many schedules pay the string hash only once per
    instance.
    """
    if not 0 < low_fraction <= 1:
        raise ValueError("low_fraction must be in (0, 1]")
    rng = random.Random()
    memo: Dict[Tuple[str, int, int], Tuple[Time, Time]] = {}

    def sample(job: Job, frame: int) -> Time:
        key = (job.process, job.k, frame)
        hit = memo.get(key)
        if hit is not None and hit[0] == job.wcet:
            return hit[1]
        rng.seed(f"{seed}/{job.process}/{job.k}/{frame}")
        frac = low_fraction + (1 - low_fraction) * rng.random()
        # keep it rational with millisecond-ish resolution
        scaled = int(frac * 10_000)
        value = fraction_from_ratio(
            job.wcet.numerator * scaled, job.wcet.denominator * 10_000
        )
        memo[key] = (job.wcet, value)
        return value

    return sample


@dataclass(frozen=True)
class JobRecord:
    """Timing record of one job instance (one job in one frame)."""

    process: str
    frame: int
    k_frame: int        # invocation count within the frame (graph job's k)
    global_k: int       # invocation count over the whole run
    processor: int
    release: Time       # real release: invocation time (arrival for sporadic)
    start: Time
    end: Time
    deadline: Time      # real absolute deadline: release + dp
    is_false: bool
    is_server: bool
    #: Name of the processor class the job's slot is bound to ("cpu" on
    #: classic homogeneous schedules).
    processor_class: str = "cpu"

    @classmethod
    def _from_fields(
        cls,
        process: str,
        frame: int,
        k_frame: int,
        global_k: int,
        processor: int,
        release: Time,
        start: Time,
        end: Time,
        deadline: Time,
        is_false: bool,
        is_server: bool,
        processor_class: str = "cpu",
    ) -> "JobRecord":
        """Hot-loop constructor bypassing the frozen ``__setattr__`` guards.

        Building through ``__dict__`` skips the per-field frozen-dataclass
        checks in the allocation-heavy timing loop (equality and hashing
        are unaffected).  The field list is explicit and cross-checked
        against the dataclass at import time (below): adding a field to
        ``JobRecord`` fails loudly there instead of silently reverting to
        a slow path or building incomplete records.
        """
        rec = _obj_new(cls)
        _obj_setattr(rec, "__dict__", {
            "process": process,
            "frame": frame,
            "k_frame": k_frame,
            "global_k": global_k,
            "processor": processor,
            "release": release,
            "start": start,
            "end": end,
            "deadline": deadline,
            "is_false": is_false,
            "is_server": is_server,
            "processor_class": processor_class,
        })
        return rec

    @property
    def name(self) -> str:
        return f"{self.process}[{self.global_k}]"

    @property
    def missed(self) -> bool:
        """Deadline miss — false jobs never miss (they do not execute)."""
        return not self.is_false and self.end > self.deadline

    @property
    def response_time(self) -> Time:
        return self.end - self.release


_JOB_RECORD_FIELDS = (
    "process", "frame", "k_frame", "global_k", "processor",
    "release", "start", "end", "deadline", "is_false", "is_server",
    "processor_class",
)
check_trusted_constructor(
    JobRecord, _JOB_RECORD_FIELDS, JobRecord._from_fields,
    dict(process="p", frame=0, k_frame=1, global_k=1, processor=0,
         release=Time(0), start=Time(0), end=Time(1), deadline=Time(2),
         is_false=False, is_server=False, processor_class="cpu"),
)


@dataclass
class RuntimeResult:
    """Everything observable from one simulated run."""

    network_name: str
    frames: int
    hyperperiod: Time
    processors: int
    records: List[JobRecord]
    channel_logs: Dict[str, List[Any]]
    external_outputs: Dict[str, List[Tuple[int, Any]]]
    trace: Trace
    overhead_intervals: List[Tuple[int, Time, Time]] = field(default_factory=list)
    #: False when the run was made with ``collect_records=False``: the empty
    #: ``records`` list then means "not retained", not "no jobs ran", and
    #: every record-derived accessor refuses to report misleading zeros.
    records_collected: bool = True
    #: False when the run was made with ``records_only=True``: the data
    #: phase never ran, so the empty channel/output observables mean "not
    #: computed", not "no activity" — ``observable()`` refuses to compare.
    data_collected: bool = True
    #: False when the run was made with ``collect_trace=False`` (or
    #: ``records_only=True``, where no data phase produced actions): the
    #: empty ``trace`` then means "not retained", not "no actions", and
    #: :func:`~repro.runtime.observers.replay` refuses to re-emit
    #: data-phase events from it.
    trace_collected: bool = True

    def _require_records(self) -> None:
        if not self.records_collected:
            raise RuntimeModelError(
                "this result was produced with collect_records=False — job "
                "records were not retained; re-run with collect_records=True "
                "or aggregate via observers during the run"
            )

    def action_trace(self) -> Trace:
        """The data phase's action :class:`~repro.core.trace.Trace`.

        Guarded accessor for the ``trace`` field: refuses to hand out an
        empty trace that means "suppressed"/"never computed" rather than
        "no actions happened".
        """
        if not self.data_collected:
            raise RuntimeModelError(
                "this result was produced with records_only=True — the data "
                "phase never ran, so there is no action trace; re-run "
                "without records_only"
            )
        if not self.trace_collected:
            raise RuntimeModelError(
                "this result was produced with collect_trace=False — the "
                "action trace was suppressed; re-run with collect_trace=True"
            )
        return self.trace

    def observable(self) -> Dict[str, Any]:
        """Canonical determinism observable (same shape as zero-delay runs)."""
        if not self.data_collected:
            raise RuntimeModelError(
                "this result was produced with records_only=True — the data "
                "phase never ran, so there is no observable to compare; "
                "re-run without records_only"
            )
        return {
            "channels": {k: list(v) for k, v in sorted(self.channel_logs.items())},
            "outputs": {k: list(v) for k, v in sorted(self.external_outputs.items())},
        }

    def misses(self) -> List[JobRecord]:
        self._require_records()
        return [r for r in self.records if r.missed]

    def executed(self) -> List[JobRecord]:
        self._require_records()
        return [r for r in self.records if not r.is_false]

    def false_jobs(self) -> List[JobRecord]:
        self._require_records()
        return [r for r in self.records if r.is_false]

    def makespan(self) -> Time:
        self._require_records()
        return max((r.end for r in self.records), default=Time(0))

    def max_response_time(self, process: Optional[str] = None) -> Time:
        candidates = [
            r.response_time
            for r in self.executed()
            if process is None or r.process == process
        ]
        return max(candidates, default=Time(0))


#: One true job instance handed from the timing phase to the data phase:
#: ``(start_tick, frame, job_index, global_k, release_tick, end_tick)``.
#: Sorting these tuples orders instances by ``(start, frame, <J index)`` —
#: the execution order of the policy — because ``(frame, job_index)`` is
#: unique; the trailing fields never influence the order.  ``end_tick``
#: rides along so data-phase observers get the kernel span without the
#: data phase re-deriving it.
_Instance = Tuple[int, int, int, int, int, int]


@dataclass
class _RunSetup:
    """Per-run immutable inputs, resolved once before the timing loop."""

    n_frames: int
    topo: List[int]
    pred_table: List[Tuple[int, ...]]
    proc_of: List[int]
    counts: List[int]
    dom: TickDomain
    arr_t: List[int]
    H_t: int
    ov_first_t: int
    ov_steady_t: int
    pdl_t: List[int]
    dur_t_const: Optional[List[int]]
    dur_t_rows: Optional[List[List[int]]]
    bound_t_rows: List[Dict[int, Tuple[int, int]]]


class MultiprocessorExecutor:
    """Simulates the static-order policy for a network + static schedule."""

    def __init__(
        self,
        network: Network,
        schedule: StaticSchedule,
        overheads: Optional[OverheadModel] = None,
    ) -> None:
        network.validate_taskgraph_subclass()
        if schedule.graph.hyperperiod is None:
            raise RuntimeModelError("schedule's task graph has no hyperperiod")
        self.network = network
        self.schedule = schedule
        self.plan = FramePlan.from_schedule(schedule)
        self.overheads = overheads or OverheadModel.none()
        self.graph: TaskGraph = schedule.graph
        self.hyperperiod: Time = schedule.graph.hyperperiod

    # ------------------------------------------------------------------
    def run(
        self,
        n_frames: int,
        stimulus: Optional[Stimulus] = None,
        execution_time: ExecutionTimeSpec = None,
        *,
        observers: Sequence[ExecutionObserver] = (),
        records_only: bool = False,
        collect_records: bool = True,
        collect_trace: bool = True,
    ) -> RuntimeResult:
        """Simulate ``n_frames`` frames of the static-order policy.

        Parameters
        ----------
        observers:
            :class:`~repro.runtime.observers.ExecutionObserver` instances
            receiving run/overhead/record events as they are resolved, and —
            when the data phase runs — the per-kernel span and channel
            write events.
        records_only:
            Skip the data phase (no kernels, no channel states): the result
            carries identical :class:`JobRecord` timing but empty
            observables.  For timing-only consumers (sweeps, waveforms).
        collect_records:
            When ``False``, ``result.records`` stays empty: records are
            not retained, and are not even built unless observers are
            listening (``on_record`` always fires when they are).  The
            data phase still runs.  For observable-only consumers like
            the determinism matrix, and for streaming observers over
            long runs that must not accumulate per-instance data.
        collect_trace:
            When ``False``, the data phase suppresses the per-action
            :class:`~repro.core.trace.Trace` (``result.trace`` stays
            empty; channel logs, external outputs and live observer events
            are unaffected).  For observable-only and streaming consumers
            that never read the action log — it is the single largest
            allocation stream of a full run.
        """
        if n_frames < 1:
            raise RuntimeModelError("n_frames must be >= 1")
        stimulus = stimulus or Stimulus()
        stimulus.validate(self.network)
        setup = self._prepare(n_frames, stimulus, execution_time)

        if observers:
            meta = RunMeta(
                network=self.network.name,
                processors=self.plan.processors,
                frames=n_frames,
                hyperperiod=self.hyperperiod,
            )
            for ob in observers:
                ob.on_run_start(meta)

        # Nearly everything the phases allocate (records, trace actions,
        # channel logs, memoised Fractions) is retained until the result is
        # assembled, so generational GC passes during the phases only
        # re-scan live objects — at 100-frame scale they cost more than a
        # third of the run.  Suspend collection for the duration (restored
        # even on error; left untouched when the caller already disabled
        # GC); cyclic garbage from user kernels is reclaimed at the next
        # post-run collection.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            records, instances, overhead_intervals, frac_memo = self._timing_phase(
                setup, observers, collect_records, collect_instances=not records_only
            )

            if records_only:
                channel_logs: Dict[str, List[Any]] = {}
                external_outputs: Dict[str, List[Tuple[int, Any]]] = {}
                trace = Trace()
            else:
                channel_logs, external_outputs, trace = self._data_phase(
                    sorted(instances), stimulus, setup.dom, frac_memo,
                    observers, collect_trace,
                )
        finally:
            if gc_was_enabled:
                gc.enable()

        result = RuntimeResult(
            network_name=self.network.name,
            frames=n_frames,
            hyperperiod=self.hyperperiod,
            processors=self.plan.processors,
            records=records,
            channel_logs=channel_logs,
            external_outputs=external_outputs,
            trace=trace,
            overhead_intervals=overhead_intervals,
            records_collected=collect_records,
            data_collected=not records_only,
            trace_collected=collect_trace and not records_only,
        )
        for ob in observers:
            ob.on_run_end(result)
        return result

    # ------------------------------------------------------------------
    def _prepare(
        self,
        n_frames: int,
        stimulus: Stimulus,
        execution_time: ExecutionTimeSpec,
    ) -> _RunSetup:
        """Resolve every run input into the integer tick domain.

        Three steps: (1) invocation identity — which server-job slots are
        served by a real arrival in each frame; (2) execution durations
        (exact rationals, identity-resolved so the execution-time model is
        only sampled for true jobs); (3) the run's tick domain — the
        graph's domain extended by every other timing input — and the
        integer views of all of them.
        """
        binding = ArrivalBinding(self.network, self.hyperperiod, n_frames, stimulus)
        per_frame_counts = self.plan.per_process_count()

        graph = self.graph
        jobs = graph.jobs
        n = len(jobs)
        topo = self._frame_topological_order()
        proc_of = [self.plan.processor_of(i) for i in range(n)]
        counts = [per_frame_counts[j.process] for j in jobs]
        proc_deadline = [
            self.network.processes[j.process].deadline for j in jobs
        ]

        server_jobs = [i for i in range(n) if jobs[i].is_server]
        bound_rows: List[Dict[int, Any]] = []
        for frame in range(n_frames):
            row: Dict[int, Any] = {}
            for i in server_jobs:
                b = binding.lookup(
                    jobs[i].process, frame, jobs[i].subset_index, jobs[i].slot
                )
                if b is not None:
                    row[i] = b
            bound_rows.append(row)

        dur_const, dur_rows = self._durations(
            execution_time, bound_rows, n_frames, topo
        )

        tt = graph.tick_times().rescaled_to(chain(
            (self.overheads.first_frame_arrival, self.overheads.steady_frame_arrival),
            proc_deadline,
            (b.time for row in bound_rows for b in row.values()),
            (dur_const if dur_rows is None
             else (d for row in dur_rows for d in row if d is not None)),
        ))
        dom = tt.domain
        to_ticks = dom.to_ticks
        if dur_rows is None:
            dur_t_const: Optional[List[int]] = [to_ticks(d) for d in dur_const]
            dur_t_rows = None
        else:
            dur_t_const = None
            dur_t_rows = [
                [to_ticks(d) if d is not None else 0 for d in row]
                for row in dur_rows
            ]
        bound_t_rows: List[Dict[int, Tuple[int, int]]] = [
            {i: (to_ticks(b.time), b.global_k) for i, b in row.items()}
            for row in bound_rows
        ]
        return _RunSetup(
            n_frames=n_frames,
            topo=topo,
            pred_table=graph.predecessor_table(),
            proc_of=proc_of,
            counts=counts,
            dom=dom,
            arr_t=tt.arrival,
            H_t=to_ticks(self.hyperperiod),
            ov_first_t=to_ticks(self.overheads.first_frame_arrival),
            ov_steady_t=to_ticks(self.overheads.steady_frame_arrival),
            pdl_t=[to_ticks(d) for d in proc_deadline],
            dur_t_const=dur_t_const,
            dur_t_rows=dur_t_rows,
            bound_t_rows=bound_t_rows,
        )

    # ------------------------------------------------------------------
    def _timing_phase(
        self,
        rs: _RunSetup,
        observers: Sequence[ExecutionObserver],
        collect_records: bool,
        collect_instances: bool = True,
    ) -> Tuple[
        List[JobRecord],
        List[_Instance],
        List[Tuple[int, Time, Time]],
        Dict[int, Time],
    ]:
        """The per-frame timing recurrence, in pure integer ticks.

        Emits overhead windows and (when *collect_records*) one
        :class:`JobRecord` per instance to *observers* as they resolve.
        Returns the record list, the true-instance hand-off for the data
        phase, the overhead intervals and the tick→Fraction memo (shared
        with the data phase so release conversions are not repeated).
        """
        jobs = self.graph.jobs
        n = len(jobs)
        topo = rs.topo
        pred_table = rs.pred_table
        proc_of = rs.proc_of
        counts = rs.counts
        arr_t = rs.arr_t
        pdl_t = rs.pdl_t
        H_t = rs.H_t
        from_ticks = rs.dom.from_ticks

        records: List[JobRecord] = []
        instances: List[_Instance] = []
        overhead_intervals: List[Tuple[int, Time, Time]] = []
        chain_end: List[int] = [0] * self.plan.processors

        # Tick->Fraction conversions repeat heavily (shared arrivals and
        # deadlines within a frame, end==next-start chains on busy
        # processors), so memoise them for the duration of the run.
        frac_memo: Dict[int, Time] = {}
        is_server_of = [j.is_server for j in jobs]
        k_of = [j.k for j in jobs]
        process_of = [j.process for j in jobs]
        class_name_of = [
            cls.name for cls in self.plan.platform.class_per_processor()
        ]
        rec_append = records.append if collect_records else None
        # The instance hand-off only feeds the data phase; skip it when the
        # caller will not run one (records_only), keeping long timing-only
        # sweeps O(1) in per-instance memory beyond the records they asked for.
        inst_append = instances.append if collect_instances else None
        new = _obj_new
        set_dict = _obj_setattr
        record_cls = JobRecord
        memo_get = frac_memo.get
        notify_overhead = [ob.on_overhead for ob in observers]
        # Only observers that actually override on_record (in a subclass or
        # as an instance attribute) count as record consumers — the no-op
        # inherited hook must not force record construction in the
        # collect_records=False fast path.
        notify_record = [
            ob.on_record for ob in observers
            if _overrides(ob, "on_record", ExecutionObserver.on_record)
        ]
        # Records are *built* whenever someone consumes them (the result
        # list or an observer) but *retained* only when collect_records —
        # so observers can stream a long run without the result growing.
        build_records = collect_records or bool(notify_record)

        for frame in range(rs.n_frames):
            base = H_t * frame
            ov = rs.ov_first_t if frame == 0 else rs.ov_steady_t
            if ov > 0:
                o_start, o_end = from_ticks(base), from_ticks(base + ov)
                overhead_intervals.append((frame, o_start, o_end))
                for emit in notify_overhead:
                    emit(frame, o_start, o_end)
            floor = base + ov
            end_row = [0] * n
            brow = rs.bound_t_rows[frame]
            durs = rs.dur_t_const if rs.dur_t_rows is None else rs.dur_t_rows[frame]
            for i in topo:
                proc = proc_of[i]
                is_false = False
                if is_server_of[i]:
                    bound = brow.get(i)
                    if bound is None:
                        is_false = True
                        release_t = base + arr_t[i]
                        visible = release_t if release_t > floor else floor
                        global_k = frame * counts[i] + k_of[i]
                    else:
                        release_t, global_k = bound
                        visible = release_t if release_t > floor else floor
                        if base > visible:
                            visible = base
                else:
                    release_t = base + arr_t[i]
                    visible = release_t if release_t > floor else floor
                    global_k = frame * counts[i] + k_of[i]
                start = visible
                ce = chain_end[proc]
                if ce > start:
                    start = ce
                for p in pred_table[i]:
                    pe = end_row[p]
                    if pe > start:
                        start = pe
                end = start if is_false else start + durs[i]
                chain_end[proc] = end
                end_row[i] = end

                if inst_append is not None and not is_false:
                    inst_append((start, frame, i, global_k, release_t, end))
                if not build_records:
                    continue

                release_f = memo_get(release_t)
                if release_f is None:
                    release_f = frac_memo[release_t] = from_ticks(release_t)
                start_f = memo_get(start)
                if start_f is None:
                    start_f = frac_memo[start] = from_ticks(start)
                if end == start:
                    end_f = start_f
                else:
                    end_f = memo_get(end)
                    if end_f is None:
                        end_f = frac_memo[end] = from_ticks(end)
                deadline_t = release_t + pdl_t[i]
                deadline_f = memo_get(deadline_t)
                if deadline_f is None:
                    deadline_f = frac_memo[deadline_t] = from_ticks(deadline_t)

                # Inline trusted construction: the per-record call into
                # _from_fields is itself measurable at 100-frame scale.
                # The field *tuple* is guarded at import below; the literal
                # keys here are pinned by the record-field drift test in
                # tests/test_observers.py (TestJobRecordConstructor).
                rec = new(record_cls)
                set_dict(rec, "__dict__", {
                    "process": process_of[i],
                    "frame": frame,
                    "k_frame": k_of[i],
                    "global_k": global_k,
                    "processor": proc,
                    "release": release_f,
                    "start": start_f,
                    "end": end_f,
                    "deadline": deadline_f,
                    "is_false": is_false,
                    "is_server": is_server_of[i],
                    "processor_class": class_name_of[proc],
                })
                if rec_append is not None:
                    rec_append(rec)
                if notify_record:
                    for emit in notify_record:
                        emit(rec)
        return records, instances, overhead_intervals, frac_memo

    # ------------------------------------------------------------------
    def _frame_topological_order(self) -> List[int]:
        """Job indices ordered by (static start, index).

        For a feasible schedule this order is topological for the union of
        precedence edges and per-processor chains, so a single pass resolves
        all timing dependencies within a frame.  A schedule whose start
        times contradict the precedence edges is rejected loudly here —
        the timing recurrence would otherwise read uncomputed predecessor
        end times.
        """
        n = len(self.graph)
        _, start_t, _, _, _ = self.schedule.tick_view()
        if len(start_t) < n:
            for i in range(n):
                self.schedule.entry(i)  # raises SchedulingError for the gap
        order = sorted(range(n), key=lambda i: (start_t[i], i))
        pos = [0] * n
        for idx, i in enumerate(order):
            pos[i] = idx
        jobs = self.graph.jobs
        pred_table = self.graph.predecessor_table()
        for i in range(n):
            for p in pred_table[i]:
                if pos[p] > pos[i]:
                    raise RuntimeModelError(
                        f"static schedule starts job {jobs[i].name} before its "
                        f"predecessor {jobs[p].name} — precedence-violating "
                        "schedules cannot drive the static-order policy"
                    )
        return order

    def _durations(
        self,
        spec: ExecutionTimeSpec,
        bound_rows: List[Dict[int, Any]],
        n_frames: int,
        topo: List[int],
    ) -> Tuple[Optional[List[Time]], Optional[List[List[Optional[Time]]]]]:
        """Per-instance execution durations (including per-job overhead).

        Returns ``(constant_per_job, None)`` when the model is frame
        independent (default WCETs, per-process tables) and
        ``(None, per_frame_rows)`` for callable models.  A callable is
        sampled exactly once per *true* job instance, frame by frame in the
        schedule-topological order — the same call sequence the timing loop
        itself makes — so even a stateful callable observes the original
        evaluation order.  False jobs get ``None`` (they never execute).

        On a heterogeneous platform the default model charges each job its
        class-resolved WCET on the processor its slot is bound to, and
        sampled models (tables, callables) are scaled by the exact
        ``effective / base`` WCET ratio of that class — a jitter model
        expressing "this instance ran at 70% of its WCET" keeps that
        meaning on every class.
        """
        jobs = self.graph.jobs
        per_job_ov = self.overheads.per_job
        platform = self.plan.platform
        if platform.is_unit and all(j.wcet_by_class is None for j in jobs):
            # Degenerate platform: the exact pre-platform duration model.
            if spec is None:
                return [j.wcet + per_job_ov for j in jobs], None
            if not callable(spec):
                table = {
                    name: as_positive_time(value, f"execution time of {name!r}")
                    for name, value in spec.items()
                }
                missing = sorted({j.process for j in jobs} - set(table))
                if missing:
                    raise RuntimeModelError(f"missing execution time for {missing!r}")
                return [table[j.process] + per_job_ov for j in jobs], None

            rows: List[List[Optional[Time]]] = []
            for frame in range(n_frames):
                brow = bound_rows[frame]
                row: List[Optional[Time]] = [None] * len(jobs)
                for i in topo:
                    job = jobs[i]
                    if job.is_server and i not in brow:
                        continue  # false job in this frame
                    row[i] = as_time(spec(job, frame)) + per_job_ov
                rows.append(row)
            return None, rows

        cls_of = [
            platform.class_of(self.plan.processor_of(i))
            for i in range(len(jobs))
        ]
        if spec is None:
            return [
                j.wcet_on(cls_of[i]) + per_job_ov
                for i, j in enumerate(jobs)
            ], None
        scale = [
            j.wcet_on(cls_of[i]) / j.wcet for i, j in enumerate(jobs)
        ]
        if not callable(spec):
            table = {
                name: as_positive_time(value, f"execution time of {name!r}")
                for name, value in spec.items()
            }
            missing = sorted({j.process for j in jobs} - set(table))
            if missing:
                raise RuntimeModelError(f"missing execution time for {missing!r}")
            return [
                table[j.process] * scale[i] + per_job_ov
                for i, j in enumerate(jobs)
            ], None

        het_rows: List[List[Optional[Time]]] = []
        for frame in range(n_frames):
            brow = bound_rows[frame]
            row = [None] * len(jobs)
            for i in topo:
                job = jobs[i]
                if job.is_server and i not in brow:
                    continue  # false job in this frame
                row[i] = as_time(spec(job, frame)) * scale[i] + per_job_ov
            het_rows.append(row)
        return None, het_rows

    # ------------------------------------------------------------------
    def _data_phase(
        self,
        order: List[_Instance],
        stimulus: Stimulus,
        dom: TickDomain,
        frac_memo: Dict[int, Time],
        observers: Sequence[ExecutionObserver] = (),
        collect_trace: bool = True,
    ) -> Tuple[Dict[str, List[Any]], Dict[str, List[Tuple[int, Any]]], Trace]:
        """Run the kernels of all true instances in policy order.

        The loop is the per-instance fast path of a full simulation:

        * one mutable :class:`JobContext` per **process** (not per
          instance), rebound (``k``/``now``) through the trusted
          :meth:`JobContext._rebind` before each dispatch — the variable
          store, channel states and sample maps it closes over are
          run-constant per process;
        * dispatch is batched per ``(process, frame)`` run: the context,
          kernel entry point and rebind method are re-fetched only when the
          instance stream switches process, so bursts and back-to-back
          frames of one process pay a single lookup;
        * the action trace (``JobStart``/``JobEnd`` markers; the per-action
          log inside :class:`JobContext`) is built only when
          *collect_trace*;
        * data-phase observer events (kernel spans, channel writes) are
          emitted only for observers that override the hooks — with none
          attached the loop does no Fraction conversions beyond the
          releases.
        """
        network = self.network
        channel_states: Dict[str, ChannelState] = {
            name: spec.new_state() for name, spec in network.channels.items()
        }
        variables: Dict[str, Dict[str, Any]] = {
            name: proc.fresh_variables()
            for name, proc in network.processes.items()
        }
        ext_out: Dict[str, ExternalOutputState] = {
            name: ExternalOutputState(spec)
            for name, spec in network.external_outputs.items()
        }
        # The trace is recorded compactly and materialised only if a
        # consumer reads ``result.trace`` — most sweeps never do, and the
        # per-action dataclass allocation would otherwise dominate the
        # phase (see core/trace.LazyTrace).
        trace = LazyTrace() if collect_trace else None
        trace_append = trace.raw.append if trace is not None else None
        from_ticks = dom.from_ticks
        memo_get = frac_memo.get
        process_of = [j.process for j in self.graph.jobs]

        notify_start = [
            ob.on_job_data_start for ob in observers
            if _overrides(ob, "on_job_data_start", _DATA_HOOKS[0][1])
        ]
        notify_end = [
            ob.on_job_data_end for ob in observers
            if _overrides(ob, "on_job_data_end", _DATA_HOOKS[1][1])
        ]
        notify_write = [
            ob.on_channel_write for ob in observers
            if _overrides(ob, "on_channel_write", _DATA_HOOKS[2][1])
        ]
        emit_spans = bool(notify_start or notify_end or notify_write)
        # Channel writes are observed through the JobContext write hook; the
        # executing job's identity and start instant are threaded through a
        # mutable cell shared by all contexts, so the hot path installs no
        # per-instance closures.
        current: List[Any] = [None, None]  # [process name, start Fraction]
        if notify_write:
            def _write_hook(channel: str, value: Any) -> None:
                name, at = current
                for emit in notify_write:
                    emit(name, channel, value, at)
        else:
            _write_hook = None

        # One reusable context and one resolved kernel entry point per
        # process.  Dispatching straight to KernelBehavior's kernel callable
        # skips a delegation frame per instance; other Behavior subclasses
        # keep their run_job entry point.
        bindings: Dict[str, Tuple[JobContext, Callable[[JobContext], None]]] = {}
        for name, proc in network.processes.items():
            ctx = JobContext(
                process=name,
                k=0,
                now=Time(0),
                variables=variables[name],
                inputs={n: channel_states[n] for n in proc.inputs},
                outputs={n: channel_states[n] for n in proc.outputs},
                external_inputs={
                    n: stimulus.samples_view(n) for n in proc.external_inputs
                },
                external_outputs={n: ext_out[n] for n in proc.external_outputs},
                trace=trace,
            )
            ctx._on_write = _write_hook
            behavior = proc.behavior
            dispatch = (
                behavior._kernel
                if behavior.__class__ is KernelBehavior
                else behavior.run_job
            )
            bindings[name] = (ctx, dispatch)

        prev_name = None
        ctx = dispatch = rebind = None
        for start_t, frame, job_idx, global_k, release_t, end_t in order:
            name = process_of[job_idx]
            if name != prev_name:
                ctx, dispatch = bindings[name]
                rebind = ctx._rebind
                prev_name = name
            release = memo_get(release_t)
            if release is None:
                release = frac_memo[release_t] = from_ticks(release_t)
            rebind(global_k, release)
            if emit_spans:
                start_f = memo_get(start_t)
                if start_f is None:
                    start_f = frac_memo[start_t] = from_ticks(start_t)
                current[0] = name
                current[1] = start_f
                for emit in notify_start:
                    emit(name, global_k, frame, start_f)
            if trace_append is not None:
                trace_append(("S", name, global_k))
            dispatch(ctx)
            if trace_append is not None:
                trace_append(("E", name, global_k))
            if notify_end:
                end_f = memo_get(end_t)
                if end_f is None:
                    end_f = frac_memo[end_t] = from_ticks(end_t)
                for emit in notify_end:
                    emit(name, global_k, frame, end_f)
        return (
            {n: list(s.write_log) for n, s in channel_states.items()},
            {n: s.as_sequence() for n, s in ext_out.items()},
            trace if trace is not None else Trace(),
        )


def run_static_order(
    network: Network,
    schedule: StaticSchedule,
    n_frames: int,
    stimulus: Optional[Stimulus] = None,
    execution_time: ExecutionTimeSpec = None,
    overheads: Optional[OverheadModel] = None,
    *,
    observers: Sequence[ExecutionObserver] = (),
    records_only: bool = False,
    collect_records: bool = True,
    collect_trace: bool = True,
) -> RuntimeResult:
    """One-call convenience wrapper around :class:`MultiprocessorExecutor`."""
    executor = MultiprocessorExecutor(network, schedule, overheads)
    return executor.run(
        n_frames,
        stimulus,
        execution_time,
        observers=observers,
        records_only=records_only,
        collect_records=collect_records,
        collect_trace=collect_trace,
    )
