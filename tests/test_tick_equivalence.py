"""Tick-domain vs Fraction-domain equivalence (the optimisation's contract).

The integer-tick ports of the list scheduler, priority search and runtime
executor must produce *exactly* — not approximately — the same public
values as the pure-Fraction reference implementations copied into
``fraction_reference.py``:

* identical ``StaticSchedule`` entries (job, processor, exact start),
* identical ``JobRecord`` timing fields on every instance,
* identical determinism observables (channel write logs, external outputs),

on the three example applications (Fig. 1, FFT, FMS), on networks with
fractional periods (1/2, 1/3 — non-trivial LCM of denominators), and under
jittered execution times.
"""

from fractions import Fraction

import pytest

from repro.apps import (
    build_fft_network,
    build_fig1_network,
    build_fms_network,
    fft_stimulus,
    fft_wcets,
    fig1_stimulus,
    fig1_wcets,
    fms_stimulus,
    fms_wcets,
)
from repro.core import Network
from repro.runtime import (
    OverheadModel,
    jittered_execution,
    run_static_order,
)
from repro.runtime.static_order import _window_of_ticks
from repro.core.ticks import TickDomain
from repro.scheduling import available_heuristics, list_schedule
from repro.taskgraph import derive_task_graph

from fraction_reference import (
    reference_derive_task_graph,
    reference_jittered_execution,
    reference_list_schedule,
    reference_run_static_order,
    reference_simulate_invocations,
)


def fig1():
    net = build_fig1_network()
    return net, derive_task_graph(net, fig1_wcets()), 2, fig1_stimulus(3)


def fft():
    net = build_fft_network()
    vecs = [[k, k + 1j, -k, 0.5 * k] for k in range(3)]
    return net, derive_task_graph(net, fft_wcets()), 2, fft_stimulus(vecs)


def fms():
    net = build_fms_network()
    g = derive_task_graph(net, fms_wcets())
    return net, g, 1, fms_stimulus(net, g.hyperperiod * 3)


def fractional():
    """Periods 1/2 and 1/3: hyperperiod 1, tick scale lcm(2, 3) = 6."""
    net = Network("fractional")
    net.add_periodic("Fast", period="1/3", deadline="1/3",
                     kernel=lambda ctx: ctx.write("c", ctx.k))
    net.add_periodic("Slow", period="1/2", deadline="1/2",
                     kernel=lambda ctx: ctx.read("c"))
    net.connect("Fast", "Slow", "c")
    net.add_priority("Fast", "Slow")
    net.validate()
    graph = derive_task_graph(net, {"Fast": "1/30", "Slow": "1/20"})
    assert graph.hyperperiod == Fraction(1)
    return net, graph, 2, None


APPS = {"fig1": fig1, "fft": fft, "fms": fms, "fractional": fractional}


def assert_same_schedule(ours, ref):
    assert ours.processors == ref.processors
    assert len(ours.entries) == len(ref.entries)
    for a, b in zip(ours.entries, ref.entries):
        assert (a.job_index, a.processor) == (b.job_index, b.processor)
        # exact rational equality, not float closeness
        assert a.start == b.start
        assert (a.start.numerator, a.start.denominator) == (
            b.start.numerator, b.start.denominator)
    assert ours.makespan() == ref.makespan()
    assert ours.is_feasible() == ref.is_feasible()


def assert_same_result(ours, ref):
    assert len(ours.records) == len(ref.records)
    for a, b in zip(ours.records, ref.records):
        assert a == b  # dataclass equality: every field, exact Fractions
        for attr in ("release", "start", "end", "deadline"):
            fa, fb = getattr(a, attr), getattr(b, attr)
            assert (fa.numerator, fa.denominator) == (fb.numerator, fb.denominator)
    assert ours.observable() == ref.observable()
    assert ours.overhead_intervals == ref.overhead_intervals
    assert list(ours.trace) == list(ref.trace)


def assert_same_graph(ours, ref):
    """Derived graphs must match bit for bit: jobs, parameters, edges."""
    assert len(ours) == len(ref)
    assert ours.hyperperiod == ref.hyperperiod
    hp, rp = ours.hyperperiod, ref.hyperperiod
    assert (hp.numerator, hp.denominator) == (rp.numerator, rp.denominator)
    for a, b in zip(ours.jobs, ref.jobs):
        assert a == b  # dataclass equality: every field
        for attr in ("arrival", "deadline", "wcet"):
            fa, fb = getattr(a, attr), getattr(b, attr)
            assert (fa.numerator, fa.denominator) == (fb.numerator, fb.denominator)
        assert (a.is_server, a.subset_index, a.slot) == (
            b.is_server, b.subset_index, b.slot)
    assert ours.edges() == ref.edges()


DERIVATION_CASES = {
    "fig1": lambda: (build_fig1_network(), fig1_wcets(), None),
    "fig1_40s": lambda: (build_fig1_network(), fig1_wcets(), 40_000),
    "fft": lambda: (build_fft_network(), fft_wcets(), None),
    "fms": lambda: (build_fms_network(), fms_wcets(), None),
}


@pytest.mark.parametrize("case", sorted(DERIVATION_CASES))
def test_derivation_identical(case):
    net, wcets, horizon = DERIVATION_CASES[case]()
    assert_same_graph(
        derive_task_graph(net, wcets, horizon=horizon),
        reference_derive_task_graph(net, wcets, horizon=horizon),
    )


def test_derivation_identical_fms_40s():
    """The Section V-B pain point: the 40 s-hyperperiod FMS graph."""
    net = build_fms_network(reduced_hyperperiod=False)
    wcets = fms_wcets()
    ours = derive_task_graph(net, wcets)
    ref = reference_derive_task_graph(net, wcets)
    assert len(ours) == 2798
    assert_same_graph(ours, ref)


def test_derivation_identical_fractional_periods():
    net, graph, _, _ = fractional()
    assert_same_graph(
        graph, reference_derive_task_graph(net, {"Fast": "1/30", "Slow": "1/20"})
    )


def test_derivation_identical_unreduced():
    """The reduce_edges=False escape hatch matches the reference pre-step-5."""
    net, wcets, _ = DERIVATION_CASES["fig1"]()
    ours = derive_task_graph(net, wcets, reduce_edges=False)
    ref = reference_derive_task_graph(net, wcets, reduce_edges=False)
    assert_same_graph(ours, ref)


def test_derivation_identical_per_job_wcet_callable():
    """Callable WCETs are sampled per job, in the same <J order."""
    calls_ours, calls_ref = [], []

    def make_wcet(log):
        def wcet(process, k):
            log.append((process, k))
            return Fraction(20 + (k % 3), 1 + (k % 2))
        return wcet

    net = build_fig1_network()
    ours = derive_task_graph(
        net, {name: make_wcet(calls_ours) for name in fig1_wcets()}
    )
    ref = reference_derive_task_graph(
        net, {name: make_wcet(calls_ref) for name in fig1_wcets()}
    )
    assert_same_graph(ours, ref)
    assert calls_ours == calls_ref


@pytest.mark.parametrize("app", ["fig1", "fft", "fms"])
def test_invocation_order_identical(app):
    """The public simulate_invocations equals the Fraction simulation."""
    from repro.taskgraph import simulate_invocations, transform

    builders = {
        "fig1": build_fig1_network, "fft": build_fft_network,
        "fms": build_fms_network,
    }
    pn = transform(builders[app]())
    from repro.core.timebase import hyperperiod
    H = hyperperiod([p for p, _ in pn.effective.values()])
    ours = simulate_invocations(pn, H)
    ref = reference_simulate_invocations(pn, H)
    assert len(ours) == len(ref)
    for a, b in zip(ours, ref):
        assert (a.time, a.rank, a.process, a.k) == (b.time, b.rank, b.process, b.k)
        assert (a.time.numerator, a.time.denominator) == (
            b.time.numerator, b.time.denominator)


@pytest.mark.parametrize("app", sorted(APPS))
@pytest.mark.parametrize("heuristic", ["alap", "blevel", "deadline", "arrival"])
def test_schedules_identical(app, heuristic):
    _, graph, m, _ = APPS[app]()
    assert_same_schedule(
        list_schedule(graph, m, heuristic),
        reference_list_schedule(graph, m, heuristic),
    )
    assert heuristic in available_heuristics()


@pytest.mark.parametrize("app", sorted(APPS))
def test_wcet_simulation_identical(app):
    net, graph, m, stim = APPS[app]()
    schedule = list_schedule(graph, m, "alap")
    frames = 3
    ours = run_static_order(net, schedule, frames, stim)
    ref = reference_run_static_order(net, schedule, frames, stim)
    assert_same_result(ours, ref)


@pytest.mark.parametrize("app", sorted(APPS))
def test_jittered_simulation_identical(app):
    net, graph, m, stim = APPS[app]()
    schedule = list_schedule(graph, m, "alap")
    ours = run_static_order(
        net, schedule, 2, stim, execution_time=jittered_execution(42)
    )
    ref = reference_run_static_order(
        net, schedule, 2, stim, execution_time=reference_jittered_execution(42)
    )
    assert_same_result(ours, ref)


def test_overhead_simulation_identical():
    net, graph, m, stim = fig1()
    schedule = list_schedule(graph, m, "alap")
    ov = OverheadModel.create(first_frame_arrival=41, steady_frame_arrival=20,
                              per_job="1/2")
    ours = run_static_order(net, schedule, 3, stim, overheads=ov)
    ref = reference_run_static_order(net, schedule, 3, stim, overheads=ov)
    assert_same_result(ours, ref)


def test_jitter_sampler_matches_seed_construction():
    """The reseeded+memoised sampler equals a fresh Random(key) per sample."""
    _, graph, _, _ = fms()
    ours = jittered_execution(7)
    ref = reference_jittered_execution(7)
    for job in graph.jobs[:100]:
        for frame in (0, 1, 5):
            a, b = ours(job, frame), ref(job, frame)
            assert (a.numerator, a.denominator) == (b.numerator, b.denominator)
    # memoised second pass returns identical values
    for job in graph.jobs[:20]:
        assert ours(job, 0) == ref(job, 0)


def reference_window_of(period, hyperperiod, closed_right, t):
    """Seed's Fraction-domain server-window formula."""
    q = t / period
    if closed_right:
        b_index = q.numerator // q.denominator
        if b_index * period < t:
            b_index += 1
    else:
        b_index = q.numerator // q.denominator + 1
    b = b_index * period
    frame_ratio = b / hyperperiod
    frame = frame_ratio.numerator // frame_ratio.denominator
    offset = b - frame * hyperperiod
    subset_ratio = offset / period
    subset = subset_ratio.numerator // subset_ratio.denominator + 1
    return frame, subset


@pytest.mark.parametrize("closed_right", [True, False])
def test_window_binding_matches_fraction_formula(closed_right):
    period = Fraction(7, 3)
    hyperperiod = Fraction(14)  # 6 windows per frame
    dom = TickDomain.for_values([period, hyperperiod, Fraction(1, 5)])
    T_t, H_t = dom.to_ticks(period), dom.to_ticks(hyperperiod)
    for num in range(0, 500):
        t = Fraction(num, 5)
        expected = reference_window_of(period, hyperperiod, closed_right, t)
        got = _window_of_ticks(dom.to_ticks(t), T_t, H_t, closed_right)
        assert got == expected, f"t={t}"
