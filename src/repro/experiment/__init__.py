"""Scenario-first experiment API: describe a run once, sweep it at scale.

This package is the scenario-scale entry point to the paper's pipeline:

* :class:`Scenario` — a frozen, serialisable description of one run
  (workload, WCETs, processors, execution-time model, overheads,
  stimulus, frame count, executor flags);
* :class:`Experiment` — a lazy facade computing and caching the pipeline
  stages (:meth:`~Experiment.task_graph`, :meth:`~Experiment.schedule`,
  :meth:`~Experiment.run`, :meth:`~Experiment.check_determinism`,
  :meth:`~Experiment.report`) with observers attachable at any stage;
* :class:`ScenarioMatrix` + :func:`run_sweep` — STOMP-style cartesian
  sweeps over scenario fields with stage-aware derivation/schedule reuse
  and lean observer-streaming execution; ``run_sweep(workers=N)`` fans
  the cells out across spawned worker processes, one task per
  schedule-key group (:mod:`repro.experiment.parallel`), with rows
  bit-identical to a serial run;
* :class:`SweepPool` — the resident sweep service
  (:mod:`repro.experiment.pool`): spawn the workers once, keep their
  per-schedule-key caches warm across many :meth:`~SweepPool.submit`
  calls, stream rows back through ``on_row`` as cells complete.
  ``run_sweep(workers=N)`` is a thin wrapper opening a transient pool.

Sweeps are fault-tolerant: failing cells become structured error rows
(:class:`SweepCellError`) on a partial result, the parallel backend
supervises its workers (crash respawn, per-group deadlines, bounded
retry), and a content-addressed checkpoint store
(:class:`MemorySweepStore` / :class:`SqliteSweepStore`,
``run_sweep(store=...)``) makes interrupted or partially-failed sweeps
resumable — only missing/failed cells recompute.  The recovery paths are
deterministically testable with :class:`FaultPlan`
(:mod:`repro.experiment.faults`).

JSON interchange for scenarios and sweep results lives in
:mod:`repro.io.json_io` (``scenario_to_dict`` / ``sweep_result_to_dict``
and inverses); the same tagged encoding is the parallel backend's wire
format.
"""

from .scenario import (
    Scenario,
    available_workloads,
    register_workload,
    resolve_workload,
)
from .experiment import Experiment, PipelineCache
from .faults import FaultPlan, InjectedFault
from .parallel import schedule_key_groups, serial_fallback_reason
from .pool import PoolEvent, SweepPool, SweepTicket
from .store import (
    MemorySweepStore,
    SqliteSweepStore,
    SweepStore,
    scenario_hash,
)
from .sweep import (
    DATA_METRICS,
    DEFAULT_METRICS,
    ScenarioMatrix,
    SweepCell,
    SweepCellError,
    SweepResult,
    SweepRow,
    SweepStats,
    TIMING_METRICS,
    run_sweep,
)

__all__ = [
    "Scenario",
    "available_workloads",
    "register_workload",
    "resolve_workload",
    "Experiment",
    "PipelineCache",
    "DATA_METRICS",
    "DEFAULT_METRICS",
    "FaultPlan",
    "InjectedFault",
    "MemorySweepStore",
    "PoolEvent",
    "ScenarioMatrix",
    "SqliteSweepStore",
    "SweepCell",
    "SweepCellError",
    "SweepPool",
    "SweepResult",
    "SweepRow",
    "SweepStats",
    "SweepStore",
    "SweepTicket",
    "TIMING_METRICS",
    "run_sweep",
    "scenario_hash",
    "schedule_key_groups",
    "serial_fallback_reason",
]
