"""Unit tests for the integer-tick timing domain (repro.core.ticks)."""

from fractions import Fraction

import pytest

from repro.core.ticks import JobTicks, TickDomain, fraction_from_ratio
from repro.taskgraph import Job, TaskGraph


class TestTickDomain:
    def test_for_values_is_lcm_of_denominators(self):
        dom = TickDomain.for_values([Fraction(1, 2), Fraction(1, 3), 5])
        assert dom.scale == 6

    def test_integer_only_values_give_scale_one(self):
        dom = TickDomain.for_values([1, 200, Fraction(100)])
        assert dom.scale == 1

    def test_accepts_time_like_values(self):
        dom = TickDomain.for_values(["1/4", 0.1, 3])
        assert dom.scale == 20
        assert dom.to_ticks("1/4") == 5

    def test_roundtrip_is_exact(self):
        dom = TickDomain.for_values([Fraction(3, 7), Fraction(5, 12)])
        for f in (Fraction(3, 7), Fraction(5, 12), Fraction(0), Fraction(9, 84),
                  Fraction(-5, 12), Fraction(1000000007, 84)):
            assert dom.from_ticks(dom.to_ticks(f)) == f

    def test_from_ticks_is_normalised_fraction(self):
        dom = TickDomain(6)
        f = dom.from_ticks(4)
        assert isinstance(f, Fraction)
        assert (f.numerator, f.denominator) == (2, 3)
        assert hash(f) == hash(Fraction(2, 3))
        # negative and zero ticks
        assert dom.from_ticks(-4) == Fraction(-2, 3)
        assert dom.from_ticks(0) == 0

    def test_to_ticks_rejects_unrepresentable(self):
        dom = TickDomain.for_values([Fraction(1, 2)])
        with pytest.raises(ValueError, match="not representable"):
            dom.to_ticks(Fraction(1, 3))
        assert not dom.contains(Fraction(1, 3))
        assert dom.contains(Fraction(7, 2))

    def test_monotone_order_preserving(self):
        dom = TickDomain.for_values([Fraction(1, 6), Fraction(1, 10)])
        values = [Fraction(n, d) for n in range(-5, 6) for d in (1, 2, 3, 5, 6, 10, 15, 30)]
        ticks = [dom.to_ticks(v) for v in values]
        assert sorted(range(len(values)), key=lambda i: values[i]) == \
            sorted(range(len(values)), key=lambda i: ticks[i])

    def test_extended_returns_self_when_sufficient(self):
        dom = TickDomain.for_values([Fraction(1, 6)])
        assert dom.extended([Fraction(1, 2), Fraction(5, 3)]) is dom

    def test_extended_enlarges_and_rescales(self):
        dom = TickDomain.for_values([Fraction(1, 6)])
        finer = dom.extended([Fraction(1, 4)])
        assert finer.scale == 12
        assert dom.rescale_factor(finer) == 2
        assert dom.to_ticks(Fraction(5, 6)) * 2 == finer.to_ticks(Fraction(5, 6))
        with pytest.raises(ValueError, match="does not refine"):
            TickDomain(5).rescale_factor(TickDomain(12))

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            TickDomain(0)

    def test_equality(self):
        assert TickDomain(6) == TickDomain(6)
        assert TickDomain(6) != TickDomain(12)
        assert hash(TickDomain(6)) == hash(TickDomain(6))


class TestFractionFromRatio:
    def test_normalises(self):
        f = fraction_from_ratio(10, 4)
        assert (f.numerator, f.denominator) == (5, 2)
        assert f == Fraction(10, 4)

    def test_signs(self):
        assert fraction_from_ratio(-10, 4) == Fraction(-5, 2)
        assert fraction_from_ratio(10, -4) == Fraction(-5, 2)
        assert fraction_from_ratio(0, 7) == 0


class TestJobTicks:
    def graph(self):
        jobs = [
            Job("a", 1, arrival=Fraction(0), deadline=Fraction(1, 3), wcet=Fraction(1, 4)),
            Job("b", 1, arrival=Fraction(1, 3), deadline=Fraction(1), wcet=Fraction(1, 6)),
        ]
        return TaskGraph(jobs, [(0, 1)], hyperperiod=Fraction(1))

    def test_arrays_are_exact_images(self):
        g = self.graph()
        tt = g.tick_times()
        assert tt.domain.scale == 12
        assert tt.arrival == [0, 4]
        assert tt.deadline == [4, 12]
        assert tt.wcet == [3, 2]

    def test_cached_on_graph(self):
        g = self.graph()
        assert g.tick_times() is g.tick_times()

    def test_includes_hyperperiod(self):
        jobs = [Job("a", 1, arrival=0, deadline=2, wcet=1)]
        g = TaskGraph(jobs, hyperperiod=Fraction(5, 2))
        assert g.tick_times().domain.scale == 2
