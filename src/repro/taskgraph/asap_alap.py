"""ASAP start times and ALAP completion times (Section III-B).

For a task graph they are the recursive fixpoints::

    A'_i = max(A_i, max_{j in Pred(i)} A'_j + C_j)
    D'_i = min(D_i, min_{j in Succ(i)} D'_j - C_j)

``A'_i`` lower-bounds any feasible start ``s_i`` and ``D'_i`` upper-bounds
any feasible completion ``e_i``.  Because the job list is stored in
topological order, one forward and one backward pass suffice.

These times feed (a) the necessary schedulability condition of
Proposition 3.1, (b) the precedence-aware load metric
(:mod:`repro.taskgraph.load`), and (c) the ALAP/EDF schedule-priority
heuristic (:mod:`repro.scheduling.priorities`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.timebase import Time
from .graph import TaskGraph


@dataclass(frozen=True)
class TimingBounds:
    """ASAP starts and ALAP completions, indexed like ``graph.jobs``."""

    asap: List[Time]
    alap: List[Time]

    def window(self, i: int) -> Time:
        """Length of job *i*'s feasible execution window ``D'_i - A'_i``."""
        return self.alap[i] - self.asap[i]


def compute_bounds(graph: TaskGraph) -> TimingBounds:
    """Compute ASAP/ALAP for every job of *graph*."""
    n = len(graph)
    asap: List[Time] = [Time(0)] * n
    for i in range(n):
        job = graph.jobs[i]
        best = job.arrival
        for p in graph.predecessors(i):
            cand = asap[p] + graph.jobs[p].wcet
            if cand > best:
                best = cand
        asap[i] = best

    alap: List[Time] = [Time(0)] * n
    for i in range(n - 1, -1, -1):
        job = graph.jobs[i]
        best = job.deadline
        for s in graph.successors(i):
            cand = alap[s] - graph.jobs[s].wcet
            if cand < best:
                best = cand
        alap[i] = best

    return TimingBounds(asap, alap)


def precedence_feasible(graph: TaskGraph, bounds: TimingBounds = None) -> bool:
    """First half of Proposition 3.1: ``A'_i + C_i <= D'_i`` for every job.

    A violated bound means some job cannot fit its window even on infinitely
    many processors — the graph is infeasible regardless of platform.
    """
    if bounds is None:
        bounds = compute_bounds(graph)
    return all(
        bounds.asap[i] + graph.jobs[i].wcet <= bounds.alap[i]
        for i in range(len(graph))
    )


def critical_path_length(graph: TaskGraph) -> Time:
    """Length of the longest WCET-weighted path (ignoring arrivals/deadlines).

    Useful as a makespan lower bound and in reports.
    """
    n = len(graph)
    finish: List[Time] = [Time(0)] * n
    best = Time(0)
    for i in range(n):
        start = Time(0)
        for p in graph.predecessors(i):
            if finish[p] > start:
                start = finish[p]
        finish[i] = start + graph.jobs[i].wcet
        if finish[i] > best:
            best = finish[i]
    return best
