"""End-to-end integration tests: full pipelines over all library layers."""

from fractions import Fraction

import pytest

from repro import (
    ChannelKind,
    Network,
    OverheadModel,
    Stimulus,
    check_determinism,
    derive_task_graph,
    find_feasible_schedule,
    is_no_data,
    minimum_processors,
    miss_summary,
    run_static_order,
    run_zero_delay,
    task_graph_load,
)
from repro.runtime import served_horizon


class TestQuickstartPipeline:
    """The README quickstart must work exactly as documented."""

    def test_quickstart(self):
        net = Network("demo")
        net.add_periodic(
            "producer", period=100, kernel=lambda ctx: ctx.write("c", ctx.k)
        )
        net.add_periodic(
            "consumer", period=100, kernel=lambda ctx: ctx.read("c")
        )
        net.connect("producer", "consumer", "c", kind=ChannelKind.FIFO)
        net.add_priority("producer", "consumer")
        net.validate()

        graph = derive_task_graph(net, wcet={"producer": 10, "consumer": 10})
        schedule = find_feasible_schedule(graph, processors=1)
        result = run_static_order(net, schedule, n_frames=5)
        assert not result.misses()
        assert result.channel_logs["c"] == [1, 2, 3, 4, 5]


class TestMultirateEndToEnd:
    def build(self):
        net = Network("multirate")

        def source(ctx):
            ctx.write("s2f", ctx.k * 10)

        def worker(ctx):
            v = ctx.read("s2f")
            acc = ctx.get("acc", 0)
            if not is_no_data(v):
                acc += v
            ctx.assign("acc", acc)
            ctx.write("f2s", acc)

        def sink(ctx):
            ctx.write_output(ctx.read("f2s"), "out")

        net.add_periodic("source", period=200, kernel=source)
        net.add_periodic("worker", period=100, kernel=worker)
        net.add_periodic("sink", period=400, kernel=sink)
        net.connect("source", "worker", "s2f")
        net.connect("worker", "sink", "f2s", kind=ChannelKind.BLACKBOARD)
        net.add_priority_chain("source", "worker", "sink")
        net.add_external_output("sink", "out")
        net.validate()
        return net

    def test_full_pipeline(self):
        net = self.build()
        graph = derive_task_graph(net, {"source": 20, "worker": 30, "sink": 10})
        assert graph.hyperperiod == 400
        assert len(graph) == 2 + 4 + 1

        m, schedule = minimum_processors(graph)
        assert m == 1

        result = run_static_order(net, schedule, 3)
        assert miss_summary(result).missed_jobs == 0
        ref = run_zero_delay(net, 1200)
        assert result.observable() == ref.observable()

    def test_with_overheads_and_jitter(self):
        from repro import jittered_execution

        net = self.build()
        graph = derive_task_graph(net, {"source": 20, "worker": 30, "sink": 10})
        schedule = find_feasible_schedule(graph, 2)
        ov = OverheadModel.create(first_frame_arrival=5, steady_frame_arrival=2)
        a = run_static_order(net, schedule, 3, overheads=ov)
        b = run_static_order(
            net, schedule, 3, overheads=ov, execution_time=jittered_execution(1)
        )
        assert a.observable() == b.observable()


class TestSporadicEndToEnd:
    def test_sporadic_roundtrip(self, sporadic_network):
        wcets = {"sensor": 10, "sink": 10, "config": 5}
        graph = derive_task_graph(sporadic_network, wcets)
        schedule = find_feasible_schedule(graph, 1)
        frames = 4
        stim = Stimulus(
            input_samples={"cmd": [3, 7]},
            sporadic_arrivals={"config": [30, 420]},
        ).truncated(served_horizon(sporadic_network, graph.hyperperiod, frames))
        ref = run_zero_delay(sporadic_network, graph.hyperperiod * frames, stim)
        result = run_static_order(sporadic_network, schedule, frames, stim)
        assert result.observable() == ref.observable()
        assert miss_summary(result).missed_jobs == 0
        # the two arrivals produce exactly two true server jobs
        true_servers = [
            r for r in result.records if r.process == "config" and not r.is_false
        ]
        assert [r.release for r in true_servers] == [30, 420]

    def test_determinism_checker_full_stack(self, sporadic_network):
        report = check_determinism(
            sporadic_network,
            {"sensor": 10, "sink": 10, "config": 5},
            n_frames=3,
            stimulus=Stimulus(
                input_samples={"cmd": [1, 2, 3]},
                sporadic_arrivals={"config": [30, 340, 430]},
            ),
            processor_counts=(1, 2),
            heuristics=("alap", "blevel"),
            jitter_seeds=(1, 2),
        )
        assert report.deterministic, report.summary()


class TestLoadBoundIntegration:
    def test_load_lower_bound_is_respected_by_optimizer(self):
        # Build a network whose load forces >= 3 processors.
        net = Network("wide")
        for i in range(6):
            net.add_periodic(f"p{i}", period=100, kernel=lambda ctx: None)
        net.validate()
        graph = derive_task_graph(net, 45)  # 6 x 45 = 270 per 100 -> load 2.7
        lr = task_graph_load(graph)
        assert lr.min_processors == 3
        m, schedule = minimum_processors(graph)
        assert m == 3
        assert schedule.is_feasible()
