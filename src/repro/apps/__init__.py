"""Application networks: the paper's case studies plus random workloads.

Importing this package registers the case-study workloads ("fig1", "fft",
"fms", "fms-40s") with the experiment layer's workload registry, and each
case-study module exposes a ``scenario()`` factory returning a ready-to-run
:class:`~repro.experiment.Scenario` (re-exported here with distinct names).
"""

from .example_fig1 import (
    FIG1_WCET_MS,
    build_fig1_network,
    fig1_stimulus,
    fig1_wcets,
)
from .example_fig1 import scenario as fig1_scenario
from .fft import (
    DEFAULT_PERIOD_MS,
    FFT_POINTS,
    FFT_STAGES,
    build_fft_network,
    fft_stimulus,
    fft_wcets,
    reference_fft,
)
from .fft import scenario as fft_scenario
from .fms import (
    FMS_HYPERPERIOD_40S_MS,
    FMS_HYPERPERIOD_MS,
    FMS_WCETS_MS,
    build_fms_network,
    fms_scheduling_priorities,
    fms_stimulus,
    fms_wcets,
)
from .fms import scenario as fms_scenario
from .workloads import random_network, random_wcets

# The registrations a *fresh* interpreter gets from importing this
# package — exactly what a spawned sweep worker can resolve by name.
# `Scenario.dispatch_blocker` compares against these factories by
# identity, so names registered (or overridden) only in the parent
# process are refused dispatch instead of failing inside a worker.
from ..experiment.scenario import _WORKLOADS as _registry

BUILTIN_WORKLOADS = {
    name: _registry[name] for name in ("fig1", "fft", "fms", "fms-40s")
}
del _registry

__all__ = [
    "FIG1_WCET_MS",
    "build_fig1_network",
    "fig1_scenario",
    "fig1_stimulus",
    "fig1_wcets",
    "DEFAULT_PERIOD_MS",
    "FFT_POINTS",
    "FFT_STAGES",
    "build_fft_network",
    "fft_scenario",
    "fft_stimulus",
    "fft_wcets",
    "reference_fft",
    "FMS_HYPERPERIOD_40S_MS",
    "FMS_HYPERPERIOD_MS",
    "FMS_WCETS_MS",
    "build_fms_network",
    "fms_scenario",
    "fms_scheduling_priorities",
    "fms_stimulus",
    "fms_wcets",
    "random_network",
    "random_wcets",
]
