"""The paper's running example (Fig. 1): an imaginary signal-processing
application with a 200 ms input sample period, reconfigurable filter
coefficients and a feedback loop.

Network structure (process: generator):

* ``InputA``   — periodic 200 ms; reads external samples, fans out to the
  A-path (FilterA) and the B-path (FilterB);
* ``FilterA``  — periodic 100 ms; filters the A-path with a feedback gain
  read from NormA's blackboard (the paper's feedback loop — the process
  graph is cyclic, the functional-priority graph is not);
* ``NormA``    — periodic 200 ms; normalises FilterA's output, feeds the
  gain back, produces the A-path output value;
* ``OutputA``  — periodic 200 ms; writes external output 1;
* ``FilterB``  — periodic 200 ms; filters the B-path with a coefficient
  from the CoefB blackboard;
* ``OutputB``  — periodic 100 ms; writes external output 2;
* ``CoefB``    — sporadic, 2 per 700 ms; reconfigures FilterB's coefficient
  (the utility role Section III-A motivates: its *user* is FilterB).

With uniform ``Ci = 25 ms`` the derived task graph is exactly Fig. 3:
hyperperiod 200 ms, 10 jobs (CoefB served by an imaginary 2-periodic server
process with period 200 ms and corrected deadline 500 ms, truncated to 200),
and the direct ``InputA -> NormA`` edge removed as redundant by transitive
reduction.  ``ceil(load) = 2`` processors are necessary; Fig. 4's schedule
fits the frame on two processors.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..core.channels import ChannelKind, NO_DATA, is_no_data
from ..core.invocations import Stimulus
from ..core.network import Network
from ..core.process import JobContext
from ..core.timebase import TimeLike
from ..experiment.scenario import Scenario, register_workload

#: The uniform WCET used for Fig. 3 ("assuming Ci = 25ms").
FIG1_WCET_MS = 25


# ---------------------------------------------------------------------------
# kernels
# ---------------------------------------------------------------------------
def _input_a(ctx: JobContext) -> None:
    """Read external sample [k] and fan it out to both processing paths."""
    x = ctx.read_input("InputChannel")
    if is_no_data(x):
        x = 0.0
    ctx.write("a_raw", x)
    ctx.write("b_raw", x)


def _filter_a(ctx: JobContext) -> None:
    """A-path filter at 2x the input rate, with feedback gain from NormA."""
    gain = ctx.read("a_norm")
    if is_no_data(gain):
        gain = 1.0
    x = ctx.read("a_raw")
    if not is_no_data(x):
        state = ctx.get("state", 0.0)
        state = 0.5 * state + 0.5 * gain * x
        ctx.assign("state", state)
        ctx.write("a_filt", state)


def _norm_a(ctx: JobContext) -> None:
    """Drain the A-path FIFO, normalise, feed the gain back."""
    total, count = 0.0, 0
    while True:
        v = ctx.read("a_filt")
        if is_no_data(v):
            break
        total += v
        count += 1
    if count:
        mean = total / count
        gain = 1.0 / (1.0 + abs(mean))
        ctx.write("a_norm", gain)
        ctx.write("a_out", mean)


def _output_a(ctx: JobContext) -> None:
    v = ctx.read("a_out")
    ctx.write_output(None if is_no_data(v) else v, "OutputChannel1")


def _filter_b(ctx: JobContext) -> None:
    """B-path filter with a reconfigurable coefficient (CoefB blackboard)."""
    coef = ctx.read("b_coef")
    if is_no_data(coef):
        coef = 1.0
    x = ctx.read("b_raw")
    if not is_no_data(x):
        ctx.write("b_out", coef * x)


def _output_b(ctx: JobContext) -> None:
    """Runs at 100 ms against a 200 ms producer: holds the last value."""
    v = ctx.read("b_out")
    if is_no_data(v):
        v = ctx.get("held", None)
    else:
        ctx.assign("held", v)
    ctx.write_output(v, "OutputChannel2")


def _coef_b(ctx: JobContext) -> None:
    """Sporadic reconfiguration command: publish the new coefficient."""
    cmd = ctx.read_input("CoefCommands")
    if not is_no_data(cmd):
        ctx.write("b_coef", cmd)


# ---------------------------------------------------------------------------
# network
# ---------------------------------------------------------------------------
def build_fig1_network() -> Network:
    """Construct the Fig. 1 network (validated, ready for derivation)."""
    net = Network("fig1-example")
    net.add_periodic("InputA", period=200, kernel=_input_a)
    net.add_periodic("FilterA", period=100, kernel=_filter_a)
    net.add_periodic("NormA", period=200, kernel=_norm_a)
    net.add_periodic("OutputA", period=200, kernel=_output_a)
    net.add_periodic("FilterB", period=200, kernel=_filter_b)
    net.add_periodic("OutputB", period=100, kernel=_output_b)
    net.add_sporadic("CoefB", min_period=700, deadline=700, burst=2, kernel=_coef_b)

    net.connect("InputA", "FilterA", "a_raw", kind=ChannelKind.FIFO)
    net.connect("InputA", "FilterB", "b_raw", kind=ChannelKind.FIFO)
    net.connect("FilterA", "NormA", "a_filt", kind=ChannelKind.FIFO)
    net.connect("NormA", "FilterA", "a_norm", kind=ChannelKind.BLACKBOARD)
    net.connect("NormA", "OutputA", "a_out", kind=ChannelKind.FIFO)
    net.connect("FilterB", "OutputB", "b_out", kind=ChannelKind.FIFO)
    net.connect("CoefB", "FilterB", "b_coef", kind=ChannelKind.BLACKBOARD)

    # Functional priorities (arrows of Fig. 1).  InputA -> NormA is the
    # direct relation whose task-graph edge Fig. 3 marks redundant.
    net.add_priority("InputA", "FilterA")
    net.add_priority("InputA", "FilterB")
    net.add_priority("InputA", "NormA")
    net.add_priority("FilterA", "NormA")
    net.add_priority("NormA", "OutputA")
    net.add_priority("FilterB", "OutputB")
    net.add_priority("CoefB", "FilterB")

    net.add_external_input("InputA", "InputChannel")
    net.add_external_input("CoefB", "CoefCommands")
    net.add_external_output("OutputA", "OutputChannel1")
    net.add_external_output("OutputB", "OutputChannel2")

    net.validate_taskgraph_subclass()
    return net


def fig1_wcets(value: TimeLike = FIG1_WCET_MS) -> Dict[str, TimeLike]:
    """Uniform WCET map (25 ms by default, as in Fig. 3)."""
    return {
        name: value
        for name in (
            "InputA", "FilterA", "NormA", "OutputA", "FilterB", "OutputB", "CoefB",
        )
    }


def scenario(
    n_frames: int = 4,
    processors: int = 2,
    **overrides: Any,
) -> Scenario:
    """The Fig. 1 example as a ready-to-run :class:`Scenario`.

    Defaults reproduce the paper's setting: uniform 25 ms WCETs and the
    Fig. 4 two-processor schedule, driven by the deterministic
    :func:`fig1_stimulus`.  Any scenario field can be overridden by
    keyword; a non-default ``n_frames`` resizes the stimulus with it.
    """
    base: Dict[str, Any] = dict(
        workload="fig1",
        wcet=fig1_wcets(),
        processors=processors,
        n_frames=n_frames,
        stimulus=fig1_stimulus(n_frames),
        label="fig1",
    )
    base.update(overrides)
    return Scenario(**base)


def fig1_stimulus(
    n_frames: int,
    coef_arrivals: Optional[List[TimeLike]] = None,
) -> Stimulus:
    """A deterministic stimulus for *n_frames* frames of 200 ms.

    Input samples ramp linearly; CoefB commands default to one
    reconfiguration at 350 ms and one at 1050 ms (legal for 2-per-700 ms).
    """
    if n_frames < 1:
        raise ValueError("n_frames must be >= 1")
    samples = [float(k) for k in range(1, n_frames + 1)]
    if coef_arrivals is None:
        coef_arrivals = [t for t in (350, 1050) if t < 200 * n_frames]
    commands = [0.5 + 0.25 * i for i in range(len(coef_arrivals))]
    return Stimulus(
        input_samples={
            "InputChannel": samples,
            "CoefCommands": commands,
        },
        sporadic_arrivals={"CoefB": coef_arrivals},
    )


register_workload("fig1", build_fig1_network)
