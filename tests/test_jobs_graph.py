"""Unit tests for Job and TaskGraph structures (Definition 3.1)."""

from fractions import Fraction

import pytest

from repro.errors import ModelError
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.jobs import Job


def J(process, k=1, a=0, d=100, c=10, **kw):
    return Job(process, k, Fraction(a), Fraction(d), Fraction(c), **kw)


class TestJob:
    def test_name_notation(self):
        assert J("p", 3).name == "p[3]"

    def test_describe_matches_fig3_format(self):
        assert J("FilterA", 2, 100, 200, 25).describe() == "FilterA[2] (100,200,25)"

    def test_laxity(self):
        assert J("p", a=10, d=100, c=30).laxity == 60

    def test_k_one_based(self):
        with pytest.raises(ValueError):
            J("p", 0)

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            J("p", a=-1)

    def test_zero_wcet_rejected(self):
        with pytest.raises(ValueError):
            J("p", c=0)

    def test_deadline_after_arrival(self):
        with pytest.raises(ValueError):
            J("p", a=50, d=50)

    def test_server_needs_subset_and_slot(self):
        with pytest.raises(ValueError, match="subset_index and slot"):
            J("p", is_server=True)

    def test_server_ok(self):
        j = J("p", is_server=True, subset_index=1, slot=2)
        assert j.is_server and j.slot == 2


def chain_graph(n=4):
    jobs = [J(f"p{i}", a=0, d=1000) for i in range(n)]
    edges = [(i, i + 1) for i in range(n - 1)]
    return TaskGraph(jobs, edges, Fraction(1000))


class TestTaskGraph:
    def test_len_iter(self):
        g = chain_graph(3)
        assert len(g) == 3
        assert [j.process for j in g] == ["p0", "p1", "p2"]

    def test_duplicate_job_names_rejected(self):
        with pytest.raises(ModelError, match="duplicate job"):
            TaskGraph([J("p"), J("p")])

    def test_index_and_lookup(self):
        g = chain_graph()
        assert g.index_of("p2[1]") == 2
        assert g.job("p2[1]").process == "p2"
        with pytest.raises(ModelError):
            g.index_of("ghost[1]")

    def test_edges_respect_total_order(self):
        g = chain_graph(3)
        with pytest.raises(ModelError, match="total order"):
            g.add_edge(2, 1)

    def test_self_loop_rejected(self):
        with pytest.raises(ModelError, match="self-loop"):
            chain_graph().add_edge(1, 1)

    def test_out_of_range_edge(self):
        with pytest.raises(ModelError, match="out of range"):
            chain_graph(2).add_edge(0, 5)

    def test_pred_succ(self):
        g = chain_graph(3)
        assert g.successors(0) == (1,)
        assert g.predecessors(2) == (1,)
        assert g.predecessors(0) == ()

    def test_pred_succ_cache_invalidated_by_mutation(self):
        g = chain_graph(3)
        assert g.successors(0) == (1,)  # builds the cached view
        g.add_edge(0, 2)
        assert g.successors(0) == (1, 2)
        g.remove_edge(0, 2)
        assert g.successors(0) == (1,)
        assert g.sinks() == (2,)

    def test_sources_sinks(self):
        g = chain_graph(3)
        assert g.sources() == (0,)
        assert g.sinks() == (2,)

    def test_edge_count_and_listing(self):
        g = chain_graph(3)
        assert g.edge_count == 2
        assert g.edges() == [(0, 1), (1, 2)]

    def test_remove_edge(self):
        g = chain_graph(3)
        g.remove_edge(0, 1)
        assert not g.has_edge(0, 1)
        assert g.sources() == (0, 1)

    def test_has_edge_named(self):
        g = chain_graph(2)
        assert g.has_edge_named("p0[1]", "p1[1]")

    def test_jobs_of_sorted_by_k(self):
        jobs = [J("a", 1), J("b", 1), J("a", 2)]
        g = TaskGraph(jobs)
        assert g.jobs_of("a") == (0, 2)
        assert g.jobs_of("no-such-process") == ()

    def test_total_wcet(self):
        assert chain_graph(4).total_wcet() == 40

    def test_reachable_from(self):
        g = chain_graph(4)
        assert g.reachable_from(0) == {1, 2, 3}
        assert g.reachable_from(3) == set()

    def test_is_transitively_reduced(self):
        g = chain_graph(3)
        assert g.is_transitively_reduced()
        g.add_edge(0, 2)
        assert not g.is_transitively_reduced()

    def test_copy_is_independent(self):
        g = chain_graph(3)
        g2 = g.copy()
        g2.remove_edge(0, 1)
        assert g.has_edge(0, 1)
        assert g2.hyperperiod == g.hyperperiod
