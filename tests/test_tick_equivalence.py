"""Tick-domain vs Fraction-domain equivalence (the optimisation's contract).

The integer-tick ports of the list scheduler, priority search and runtime
executor must produce *exactly* — not approximately — the same public
values as the pure-Fraction reference implementations copied into
``fraction_reference.py``:

* identical ``StaticSchedule`` entries (job, processor, exact start),
* identical ``JobRecord`` timing fields on every instance,
* identical determinism observables (channel write logs, external outputs),

on the three example applications (Fig. 1, FFT, FMS), on networks with
fractional periods (1/2, 1/3 — non-trivial LCM of denominators), and under
jittered execution times.
"""

from fractions import Fraction

import pytest

from repro.apps import (
    build_fft_network,
    build_fig1_network,
    build_fms_network,
    fft_stimulus,
    fft_wcets,
    fig1_stimulus,
    fig1_wcets,
    fms_stimulus,
    fms_wcets,
)
from repro.core import Network
from repro.runtime import (
    OverheadModel,
    jittered_execution,
    run_static_order,
)
from repro.runtime.static_order import _window_of_ticks
from repro.core.ticks import TickDomain
from repro.scheduling import available_heuristics, list_schedule
from repro.taskgraph import derive_task_graph

from fraction_reference import (
    reference_jittered_execution,
    reference_list_schedule,
    reference_run_static_order,
)


def fig1():
    net = build_fig1_network()
    return net, derive_task_graph(net, fig1_wcets()), 2, fig1_stimulus(3)


def fft():
    net = build_fft_network()
    vecs = [[k, k + 1j, -k, 0.5 * k] for k in range(3)]
    return net, derive_task_graph(net, fft_wcets()), 2, fft_stimulus(vecs)


def fms():
    net = build_fms_network()
    g = derive_task_graph(net, fms_wcets())
    return net, g, 1, fms_stimulus(net, g.hyperperiod * 3)


def fractional():
    """Periods 1/2 and 1/3: hyperperiod 1, tick scale lcm(2, 3) = 6."""
    net = Network("fractional")
    net.add_periodic("Fast", period="1/3", deadline="1/3",
                     kernel=lambda ctx: ctx.write("c", ctx.k))
    net.add_periodic("Slow", period="1/2", deadline="1/2",
                     kernel=lambda ctx: ctx.read("c"))
    net.connect("Fast", "Slow", "c")
    net.add_priority("Fast", "Slow")
    net.validate()
    graph = derive_task_graph(net, {"Fast": "1/30", "Slow": "1/20"})
    assert graph.hyperperiod == Fraction(1)
    return net, graph, 2, None


APPS = {"fig1": fig1, "fft": fft, "fms": fms, "fractional": fractional}


def assert_same_schedule(ours, ref):
    assert ours.processors == ref.processors
    assert len(ours.entries) == len(ref.entries)
    for a, b in zip(ours.entries, ref.entries):
        assert (a.job_index, a.processor) == (b.job_index, b.processor)
        # exact rational equality, not float closeness
        assert a.start == b.start
        assert (a.start.numerator, a.start.denominator) == (
            b.start.numerator, b.start.denominator)
    assert ours.makespan() == ref.makespan()
    assert ours.is_feasible() == ref.is_feasible()


def assert_same_result(ours, ref):
    assert len(ours.records) == len(ref.records)
    for a, b in zip(ours.records, ref.records):
        assert a == b  # dataclass equality: every field, exact Fractions
        for attr in ("release", "start", "end", "deadline"):
            fa, fb = getattr(a, attr), getattr(b, attr)
            assert (fa.numerator, fa.denominator) == (fb.numerator, fb.denominator)
    assert ours.observable() == ref.observable()
    assert ours.overhead_intervals == ref.overhead_intervals
    assert list(ours.trace) == list(ref.trace)


@pytest.mark.parametrize("app", sorted(APPS))
@pytest.mark.parametrize("heuristic", ["alap", "blevel", "deadline", "arrival"])
def test_schedules_identical(app, heuristic):
    _, graph, m, _ = APPS[app]()
    assert_same_schedule(
        list_schedule(graph, m, heuristic),
        reference_list_schedule(graph, m, heuristic),
    )
    assert heuristic in available_heuristics()


@pytest.mark.parametrize("app", sorted(APPS))
def test_wcet_simulation_identical(app):
    net, graph, m, stim = APPS[app]()
    schedule = list_schedule(graph, m, "alap")
    frames = 3
    ours = run_static_order(net, schedule, frames, stim)
    ref = reference_run_static_order(net, schedule, frames, stim)
    assert_same_result(ours, ref)


@pytest.mark.parametrize("app", sorted(APPS))
def test_jittered_simulation_identical(app):
    net, graph, m, stim = APPS[app]()
    schedule = list_schedule(graph, m, "alap")
    ours = run_static_order(
        net, schedule, 2, stim, execution_time=jittered_execution(42)
    )
    ref = reference_run_static_order(
        net, schedule, 2, stim, execution_time=reference_jittered_execution(42)
    )
    assert_same_result(ours, ref)


def test_overhead_simulation_identical():
    net, graph, m, stim = fig1()
    schedule = list_schedule(graph, m, "alap")
    ov = OverheadModel.create(first_frame_arrival=41, steady_frame_arrival=20,
                              per_job="1/2")
    ours = run_static_order(net, schedule, 3, stim, overheads=ov)
    ref = reference_run_static_order(net, schedule, 3, stim, overheads=ov)
    assert_same_result(ours, ref)


def test_jitter_sampler_matches_seed_construction():
    """The reseeded+memoised sampler equals a fresh Random(key) per sample."""
    _, graph, _, _ = fms()
    ours = jittered_execution(7)
    ref = reference_jittered_execution(7)
    for job in graph.jobs[:100]:
        for frame in (0, 1, 5):
            a, b = ours(job, frame), ref(job, frame)
            assert (a.numerator, a.denominator) == (b.numerator, b.denominator)
    # memoised second pass returns identical values
    for job in graph.jobs[:20]:
        assert ours(job, 0) == ref(job, 0)


def reference_window_of(period, hyperperiod, closed_right, t):
    """Seed's Fraction-domain server-window formula."""
    q = t / period
    if closed_right:
        b_index = q.numerator // q.denominator
        if b_index * period < t:
            b_index += 1
    else:
        b_index = q.numerator // q.denominator + 1
    b = b_index * period
    frame_ratio = b / hyperperiod
    frame = frame_ratio.numerator // frame_ratio.denominator
    offset = b - frame * hyperperiod
    subset_ratio = offset / period
    subset = subset_ratio.numerator // subset_ratio.denominator + 1
    return frame, subset


@pytest.mark.parametrize("closed_right", [True, False])
def test_window_binding_matches_fraction_formula(closed_right):
    period = Fraction(7, 3)
    hyperperiod = Fraction(14)  # 6 windows per frame
    dom = TickDomain.for_values([period, hyperperiod, Fraction(1, 5)])
    T_t, H_t = dom.to_ticks(period), dom.to_ticks(hyperperiod)
    for num in range(0, 500):
        t = Fraction(num, 5)
        expected = reference_window_of(period, hyperperiod, closed_right, t)
        got = _window_of_ticks(dom.to_ticks(t), T_t, H_t, closed_right)
        assert got == expected, f"t={t}"
