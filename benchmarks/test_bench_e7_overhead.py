"""E7 — Section V-A closing observation: job granularity vs runtime overhead.

"this application is very fine grain (processing just one number per job),
whereas more coarse grain implementation would make the relative impact of
overhead small compared to the computation times."

We sweep a granularity factor g (samples aggregated per job: period and
WCETs scale by g, the frame-arrival overhead does not) and report the load
including the overhead job plus the observed single-processor miss ratio.
The expected shape: overhead-inclusive load falls below 1 as g grows and
single-processor misses vanish (the crossover).
"""

import numpy as np
import pytest

from repro.analysis import ExperimentReport, approx
from repro.apps import build_fft_network, fft_stimulus, fft_wcets
from repro.runtime import MultiprocessorExecutor, OverheadModel, miss_summary
from repro.scheduling import list_schedule
from repro.taskgraph import derive_task_graph, task_graph_load

SCALES = (1, 2, 4, 8)
FRAMES = 6


def sweep_point(scale):
    net = build_fft_network(period=200 * scale)
    graph = derive_task_graph(net, fft_wcets(scale))
    overheads = OverheadModel.mppa_like()
    load_ov = task_graph_load(overheads.as_overhead_job(graph, 41)).load
    schedule = list_schedule(graph, 1, "alap")
    rng = np.random.RandomState(scale)
    stim = fft_stimulus([list(rng.randn(4)) for _ in range(FRAMES)])
    result = MultiprocessorExecutor(net, schedule, overheads).run(FRAMES, stim)
    return float(load_ov), miss_summary(result)


@pytest.mark.experiment("E7")
def test_granularity_overhead_sweep(benchmark):
    results = benchmark(lambda: [sweep_point(s) for s in SCALES])

    report = ExperimentReport(
        "E7 granularity vs overhead (M=1, MPPA overhead model)", "V-A discussion"
    )
    for scale, (load_ov, ms) in zip(SCALES, results):
        report.add(
            f"g={scale} (period {200 * scale} ms)",
            "misses iff load>1",
            f"load {approx(load_ov)}, misses {ms.missed_jobs}/{ms.executed_jobs}",
        )
    report.show()

    loads = [load for load, _ in results]
    misses = [ms.missed_jobs for _, ms in results]
    # Monotone decreasing relative overhead...
    assert all(a > b for a, b in zip(loads, loads[1:]))
    # ...fine grain misses, coarse grain does not: the paper's crossover.
    assert misses[0] > 0
    assert misses[-1] == 0
    for load, miss in zip(loads, misses):
        if load < 1:
            assert miss == 0


@pytest.mark.experiment("E7")
def test_per_job_sync_cost_model(benchmark):
    """Read/write sync cost (folded into WCETs on the real platform): the
    per-job overhead knob must shift the measured frame span accordingly."""
    from repro.runtime import frame_makespans

    net = build_fft_network()
    graph = derive_task_graph(net, fft_wcets())
    schedule = list_schedule(graph, 2, "alap")
    stim = fft_stimulus([[1, 2, 3, 4]] * FRAMES)

    def run_with_sync(cost):
        ov = OverheadModel.create(per_job=cost)
        return MultiprocessorExecutor(net, schedule, ov).run(FRAMES, stim)

    result = benchmark(run_with_sync, 2)
    base = run_with_sync(0)
    inflated = max(frame_makespans(result))
    baseline = max(frame_makespans(base))
    assert inflated > baseline
