"""Tests for DOT export of networks and task graphs."""

import pytest

from repro.apps import build_fig1_network, build_fms_network, fig1_wcets
from repro.io import network_to_dot, task_graph_to_dot, write_dot
from repro.taskgraph import derive_task_graph


@pytest.fixture(scope="module")
def fig1():
    return build_fig1_network()


class TestNetworkDot:
    def test_is_a_digraph(self, fig1):
        text = network_to_dot(fig1)
        assert text.startswith('digraph "fig1-example" {')
        assert text.rstrip().endswith("}")

    def test_every_process_declared(self, fig1):
        text = network_to_dot(fig1)
        for name in fig1.processes:
            assert f'"{name}"' in text

    def test_generator_labels(self, fig1):
        text = network_to_dot(fig1)
        assert "2 per 700ms" in text          # CoefB burst notation
        assert "100ms (periodic)" in text      # FilterA

    def test_sporadic_drawn_differently(self, fig1):
        line = next(
            l for l in network_to_dot(fig1).splitlines() if l.strip().startswith('"CoefB" [')
        )
        assert "ellipse" in line and "dashed" in line

    def test_channel_styles(self, fig1):
        text = network_to_dot(fig1)
        fifo_line = next(l for l in text.splitlines() if '"a_raw"' in l)
        bb_line = next(l for l in text.splitlines() if '"b_coef"' in l)
        assert "style=solid" in fifo_line
        assert "style=dashed" in bb_line

    def test_pure_priority_edges_dotted(self, fig1):
        # InputA -> NormA is a priority without a channel
        text = network_to_dot(fig1)
        dotted = [l for l in text.splitlines() if "style=dotted" in l]
        assert any('"InputA" -> "NormA"' in l for l in dotted)

    def test_external_channels_shown(self, fig1):
        text = network_to_dot(fig1)
        assert "InputChannel" in text
        assert "OutputChannel2" in text

    def test_external_channels_optional(self, fig1):
        text = network_to_dot(fig1, include_external=False)
        assert "InputChannel" not in text

    def test_fms_renders(self):
        text = network_to_dot(build_fms_network())
        assert '"SensorInput"' in text and '"MagnDeclinConfig"' in text

    def test_quoting(self, fig1):
        # names with quotes must be escaped, not break the file
        from repro.io.dot import _quote

        assert _quote('a"b') == '"a\\"b"'


class TestTaskGraphDot:
    def test_fig3_rendering(self):
        g = derive_task_graph(build_fig1_network(), fig1_wcets())
        text = task_graph_to_dot(g, "fig3")
        assert text.startswith('digraph "fig3" {')
        assert '"CoefB[1]"' in text
        assert "(0,200,25)" in text
        assert '"CoefB[2]" -> "FilterB[1]";' in text

    def test_server_jobs_are_boxes(self):
        g = derive_task_graph(build_fig1_network(), fig1_wcets())
        line = next(
            l for l in task_graph_to_dot(g).splitlines()
            if l.strip().startswith('"CoefB[1]" [')
        )
        assert "shape=box" in line

    def test_edge_count_matches(self):
        g = derive_task_graph(build_fig1_network(), fig1_wcets())
        text = task_graph_to_dot(g)
        arrow_lines = [l for l in text.splitlines() if "->" in l]
        assert len(arrow_lines) == g.edge_count


class TestWriteDot:
    def test_writes_file(self, tmp_path, fig1):
        path = tmp_path / "net.dot"
        write_dot(network_to_dot(fig1), str(path))
        content = path.read_text()
        assert content.startswith("digraph")
        assert content.endswith("\n")
