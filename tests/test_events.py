"""Unit tests for event generators (Section II-A)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.events import (
    Invocation,
    PeriodicGenerator,
    SporadicGenerator,
    merge_invocations,
)
from repro.errors import EventError


class TestPeriodicGenerator:
    def test_default_deadline_is_period(self):
        g = PeriodicGenerator(200)
        assert g.deadline == 200

    def test_invocations_simple(self):
        g = PeriodicGenerator(100)
        assert g.invocations(300) == [0, 100, 200]

    def test_invocations_burst(self):
        g = PeriodicGenerator(100, burst=2)
        assert g.invocations(200) == [0, 0, 100, 100]

    def test_invocations_offset(self):
        g = PeriodicGenerator(100, offset=30)
        assert g.invocations(300) == [30, 130, 230]

    def test_offset_must_be_less_than_period(self):
        with pytest.raises(EventError):
            PeriodicGenerator(100, offset=100)

    def test_horizon_exclusive(self):
        g = PeriodicGenerator(100)
        assert g.invocations(200) == [0, 100]

    def test_rational_period(self):
        g = PeriodicGenerator("1/2")
        assert g.invocations(2) == [0, Fraction(1, 2), 1, Fraction(3, 2)]

    def test_is_periodic(self):
        g = PeriodicGenerator(100)
        assert g.is_periodic and not g.is_sporadic

    def test_burst_validation(self):
        with pytest.raises(EventError):
            PeriodicGenerator(100, burst=0)

    def test_negative_period_rejected(self):
        with pytest.raises(ValueError):
            PeriodicGenerator(-5)

    def test_describe_mentions_burst(self):
        assert "2 per" in PeriodicGenerator(700, burst=2).describe()


class TestSporadicGenerator:
    def test_no_fixed_invocations(self):
        with pytest.raises(EventError, match="no fixed invocation"):
            SporadicGenerator(100, 100).invocations(500)

    def test_is_sporadic(self):
        assert SporadicGenerator(100, 100).is_sporadic

    def test_validate_accepts_legal_trace(self):
        g = SporadicGenerator(300, 300, burst=2)
        assert g.validate_trace([0, 10, 310, 320]) == [0, 10, 310, 320]

    def test_validate_rejects_burst_overflow(self):
        g = SporadicGenerator(300, 300, burst=2)
        with pytest.raises(EventError, match="sporadic constraint violated"):
            g.validate_trace([0, 10, 20])

    def test_validate_rejects_cross_window_overflow(self):
        # Two at the end of one window and one just after: 3 within 300.
        g = SporadicGenerator(300, 300, burst=2)
        with pytest.raises(EventError):
            g.validate_trace([290, 295, 310])

    def test_window_is_half_open(self):
        # [0, 300) holds 2 arrivals; arrival exactly at 300 is a new window.
        g = SporadicGenerator(300, 300, burst=2)
        assert g.validate_trace([0, 299, 300]) == [0, 299, 300]

    def test_validate_rejects_unsorted(self):
        g = SporadicGenerator(300, 300, burst=2)
        with pytest.raises(EventError, match="sorted"):
            g.validate_trace([10, 5])

    def test_validate_rejects_negative(self):
        g = SporadicGenerator(300, 300)
        with pytest.raises(ValueError):
            g.validate_trace([-1])

    def test_max_events_in(self):
        g = SporadicGenerator(300, 300, burst=2)
        assert g.max_events_in(300) == 2
        assert g.max_events_in(301) == 4
        assert g.max_events_in(900) == 6

    def test_empty_trace_ok(self):
        assert SporadicGenerator(100, 100).validate_trace([]) == []

    @given(st.lists(st.integers(min_value=0, max_value=3000), max_size=20))
    @settings(max_examples=50)
    def test_validator_matches_bruteforce(self, raw):
        """The window validator agrees with a brute-force check."""
        trace = sorted(Fraction(t) for t in raw)
        g = SporadicGenerator(250, 250, burst=2)

        def brute_ok() -> bool:
            for i, t in enumerate(trace):
                count = sum(1 for u in trace if t <= u < t + 250)
                if count > 2:
                    return False
            return True

        try:
            g.validate_trace(trace)
            valid = True
        except EventError:
            valid = False
        assert valid == brute_ok()


class TestMergeInvocations:
    def test_groups_by_time(self):
        merged = merge_invocations([("a", [0, 100]), ("b", [0])])
        assert [t for t, _ in merged] == [0, 100]
        assert {i.process for i in merged[0][1]} == {"a", "b"}

    def test_indices_are_per_process_counters(self):
        merged = merge_invocations([("a", [0, 0, 100])])
        indices = [(i.process, i.index) for _, evs in merged for i in evs]
        assert indices == [("a", 1), ("a", 2), ("a", 3)]

    def test_times_strictly_increasing(self):
        merged = merge_invocations([("a", [5, 5, 7])])
        times = [t for t, _ in merged]
        assert times == sorted(set(times))

    def test_unsorted_rejected(self):
        with pytest.raises(EventError, match="sorted"):
            merge_invocations([("a", [10, 5])])

    def test_invocation_index_one_based(self):
        with pytest.raises(EventError):
            Invocation("p", Fraction(0), 0)

    def test_empty(self):
        assert merge_invocations([]) == []
