"""Tests for the multiprocessor static-order executor (Section IV).

The two propositions under test:

* **Prop. 4.1** — with a feasible static schedule and actual execution times
  bounded by the WCETs, the policy meets all deadlines and implements the
  real-time semantics (outputs == zero-delay reference);
* robustness — determinism holds under execution-time jitter and across
  different processor counts / heuristics.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import build_fig1_network, fig1_stimulus, fig1_wcets, random_network, random_wcets
from repro.core import Stimulus, run_zero_delay
from repro.errors import RuntimeModelError
from repro.runtime import (
    MultiprocessorExecutor,
    OverheadModel,
    jittered_execution,
    miss_summary,
    run_static_order,
    served_horizon,
)
from repro.scheduling import find_feasible_schedule, list_schedule
from repro.taskgraph import derive_task_graph

WCETS = {"sensor": 10, "sink": 10, "config": 10}


@pytest.fixture(scope="module")
def fig1_setup():
    net = build_fig1_network()
    graph = derive_task_graph(net, fig1_wcets())
    schedule = find_feasible_schedule(graph, 2)
    return net, graph, schedule


class TestProposition41:
    def test_no_misses_with_wcet_execution(self, fig1_setup):
        net, graph, schedule = fig1_setup
        result = run_static_order(net, schedule, 5, fig1_stimulus(5))
        assert miss_summary(result).missed_jobs == 0

    def test_no_misses_with_jitter_below_wcet(self, fig1_setup):
        net, graph, schedule = fig1_setup
        for seed in (0, 1, 2):
            result = run_static_order(
                net, schedule, 5, fig1_stimulus(5),
                execution_time=jittered_execution(seed),
            )
            assert miss_summary(result).missed_jobs == 0, seed

    def test_outputs_match_zero_delay(self, fig1_setup):
        net, graph, schedule = fig1_setup
        frames = 5
        stim = fig1_stimulus(frames).truncated(
            served_horizon(net, graph.hyperperiod, frames)
        )
        ref = run_zero_delay(net, graph.hyperperiod * frames, stim)
        result = run_static_order(net, schedule, frames, stim)
        assert result.observable() == ref.observable()

    def test_jitter_does_not_change_outputs(self, fig1_setup):
        net, graph, schedule = fig1_setup
        stim = fig1_stimulus(5).truncated(
            served_horizon(net, graph.hyperperiod, 5)
        )
        base = run_static_order(net, schedule, 5, stim)
        for seed in range(4):
            jittered = run_static_order(
                net, schedule, 5, stim, execution_time=jittered_execution(seed)
            )
            assert jittered.observable() == base.observable()

    def test_processor_count_does_not_change_outputs(self, fig1_setup):
        net, graph, _ = fig1_setup
        stim = fig1_stimulus(4).truncated(
            served_horizon(net, graph.hyperperiod, 4)
        )
        observables = []
        for m in (2, 3, 4):
            schedule = find_feasible_schedule(graph, m)
            observables.append(
                run_static_order(net, schedule, 4, stim).observable()
            )
        assert observables[0] == observables[1] == observables[2]


class TestRecords:
    def test_per_processor_mutual_exclusion(self, fig1_setup):
        net, graph, schedule = fig1_setup
        result = run_static_order(net, schedule, 3, fig1_stimulus(3))
        for m in range(result.processors):
            rows = sorted(
                (r for r in result.records if r.processor == m and not r.is_false),
                key=lambda r: r.start,
            )
            for a, b in zip(rows, rows[1:]):
                assert a.end <= b.start

    def test_precedence_respected_at_runtime(self, fig1_setup):
        net, graph, schedule = fig1_setup
        result = run_static_order(net, schedule, 2, fig1_stimulus(2))
        by = {(r.frame, r.process, r.k_frame): r for r in result.records}
        for frame in range(2):
            for i, j in graph.edges():
                ji, jj = graph.jobs[i], graph.jobs[j]
                ri = by[(frame, ji.process, ji.k)]
                rj = by[(frame, jj.process, jj.k)]
                assert ri.end <= rj.start

    def test_start_not_before_invocation(self, fig1_setup):
        net, graph, schedule = fig1_setup
        result = run_static_order(net, schedule, 3, fig1_stimulus(3))
        for r in result.records:
            if not r.is_false and not r.is_server:
                assert r.start >= r.release

    def test_record_counts(self, fig1_setup):
        net, graph, schedule = fig1_setup
        result = run_static_order(net, schedule, 3, fig1_stimulus(3))
        assert len(result.records) == 3 * len(graph)

    def test_false_jobs_for_absent_arrivals(self, fig1_setup):
        net, graph, schedule = fig1_setup
        stim = Stimulus(input_samples={"InputChannel": [1.0] * 3})  # no CoefB
        result = run_static_order(net, schedule, 3, stim)
        false = result.false_jobs()
        assert all(r.process == "CoefB" for r in false)
        assert len(false) == 6  # 2 server slots x 3 frames
        assert all(r.end == r.start for r in false)

    def test_global_k_for_periodic(self, fig1_setup):
        net, graph, schedule = fig1_setup
        result = run_static_order(net, schedule, 2, fig1_stimulus(2))
        ks = [
            r.global_k for r in result.records
            if r.process == "FilterA"
        ]
        assert sorted(ks) == [1, 2, 3, 4]

    def test_deadline_of_sporadic_uses_arrival(self, fig1_setup):
        net, graph, schedule = fig1_setup
        stim = fig1_stimulus(5, coef_arrivals=[350])
        result = run_static_order(net, schedule, 5, stim)
        true_servers = [
            r for r in result.records if r.process == "CoefB" and not r.is_false
        ]
        assert len(true_servers) == 1
        rec = true_servers[0]
        assert rec.release == 350
        assert rec.deadline == 350 + 700


class TestExecutionTimeSpecs:
    def test_per_process_table(self, fig1_setup):
        net, graph, schedule = fig1_setup
        table = {name: 5 for name in fig1_wcets()}
        result = run_static_order(net, schedule, 1, fig1_stimulus(1),
                                  execution_time=table)
        for r in result.executed():
            assert r.end - r.start == 5

    def test_missing_process_in_table(self, fig1_setup):
        net, graph, schedule = fig1_setup
        with pytest.raises(RuntimeModelError, match="missing execution time"):
            run_static_order(net, schedule, 1, execution_time={"InputA": 5})

    def test_callable_spec(self, fig1_setup):
        net, graph, schedule = fig1_setup
        result = run_static_order(
            net, schedule, 1, fig1_stimulus(1),
            execution_time=lambda job, frame: job.wcet / 2,
        )
        for r in result.executed():
            assert r.end - r.start == Fraction(25, 2)

    def test_jitter_reproducible(self):
        from repro.taskgraph.jobs import Job

        j = Job("p", 1, Fraction(0), Fraction(10), Fraction(8))
        f = jittered_execution(3)
        assert f(j, 0) == f(j, 0)
        assert 0 < f(j, 0) <= 8

    def test_jitter_low_fraction_validated(self):
        with pytest.raises(ValueError):
            jittered_execution(0, low_fraction=0)


class TestOverrunBehaviour:
    def test_overrun_misses_deadlines_but_not_determinism(self, fig1_setup):
        """Execution times above WCET break timeliness, never outputs."""
        net, graph, schedule = fig1_setup
        stim = fig1_stimulus(3).truncated(
            served_horizon(net, graph.hyperperiod, 3)
        )
        nominal = run_static_order(net, schedule, 3, stim)
        overrun = run_static_order(
            net, schedule, 3, stim,
            execution_time=lambda job, frame: job.wcet * 2,
        )
        assert miss_summary(overrun).missed_jobs > 0
        assert overrun.observable() == nominal.observable()


class TestValidation:
    def test_frames_positive(self, fig1_setup):
        net, graph, schedule = fig1_setup
        with pytest.raises(RuntimeModelError):
            run_static_order(net, schedule, 0)

    def test_graph_needs_hyperperiod(self, fig1_setup):
        from repro.taskgraph.graph import TaskGraph
        from repro.scheduling.schedule import StaticSchedule

        net, graph, schedule = fig1_setup
        bare = TaskGraph(graph.jobs, graph.edges(), hyperperiod=None)
        s = StaticSchedule(bare, schedule.processors, schedule.entries)
        with pytest.raises(RuntimeModelError, match="hyperperiod"):
            MultiprocessorExecutor(net, s)


class TestPropertyRandomNetworks:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_prop41_on_random_networks(self, seed):
        from repro.core.invocations import random_stimulus

        net = random_network(seed=seed, n_periodic=4, n_sporadic=2)
        wcets = random_wcets(net, seed=seed, utilization_target=0.4)
        graph = derive_task_graph(net, wcets)
        try:
            schedule = find_feasible_schedule(graph, 2)
        except Exception:
            return  # some random graphs are not 2-processor feasible; fine
        frames = 2
        horizon = graph.hyperperiod * frames
        stim = random_stimulus(net, horizon, seed=seed).truncated(
            served_horizon(net, graph.hyperperiod, frames)
        )
        ref = run_zero_delay(net, horizon, stim)
        result = run_static_order(net, schedule, frames, stim)
        assert miss_summary(result).missed_jobs == 0
        assert result.observable() == ref.observable()
