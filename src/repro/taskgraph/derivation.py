"""Task-graph derivation (Section III-A, steps 1–5).

Given a validated subclass FPPN and per-process WCETs, derive the task graph
``TG(J, E)``:

1. build ``PN'`` replacing sporadic processes by ``m``-periodic servers
   (:mod:`repro.taskgraph.servers`);
2. simulate the job invocation order of ``PN'`` over one hyperperiod
   ``[0, H)``, ``H = lcm(T_p in PN')``, yielding the total order ``<J``;
3. add precedence edges ``(Ja, Jb)`` for ``Ja <J Jb`` whenever
   ``pa ⋈ pb  ∨  pa = pb`` (⋈ = directly FP'-related), with job parameters

   * periodic ``p``:  ``Ai = Tp * floor((k-1)/mp)``, ``Di = Ai + dp``;
   * sporadic ``p``:  ``Ai = Tp' * floor((k-1)/mp')``, ``Di = Ai + dp - Tp'``;

4. truncate required times to the hyperperiod: ``Di := min(H, Di)``;
5. remove redundant edges by transitive reduction.

The edge rule of step 3 quantifies over *all* ordered pairs; building that
quadratic edge set only to reduce it away is wasteful, so by default we emit
the **generating subset** — consecutive same-process edges plus, per related
process pair, each job's edge to the next job of the other process — whose
transitive closure provably equals the full rule's (the reduction of step 5
is unique per closure, so the result is identical).  ``dense=True`` forces
the literal quadratic construction; the test suite cross-checks both paths.

**Tick-domain boundary.**  Steps 2–4 run entirely in the integer tick domain
(:mod:`repro.core.ticks`): one :class:`TickDomain` is built per derivation
from the transformed network's periods, deadlines and frame length, the
invocation simulation and all job-parameter arithmetic (``Ai``, ``Di``,
truncation) happen on machine integers, and the results convert back to
exact rationals only at the :class:`~repro.taskgraph.graph.TaskGraph`
boundary, when :class:`~repro.taskgraph.jobs.Job` objects are materialised.
Because the tick map is an exact, strictly monotone linear bijection, the
derived graph is **bit-identical** to a pure-Fraction derivation — jobs,
parameters and edges alike (enforced by ``tests/test_tick_equivalence.py``
against the reference implementation in ``tests/fraction_reference.py``).
Step 5 runs on the raw integer edge list (:func:`~repro.taskgraph.
transitive.reduce_edge_list`) *before* the graph is materialised, so only
one ``TaskGraph`` is ever built.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import ModelError
from ..core.network import Network
from ..core.ticks import TickDomain
from ..core.timebase import Time, TimeLike, as_positive_time, hyperperiod as lcm_periods
from .graph import TaskGraph
from .jobs import Job, WcetTable, normalize_wcet_table
from .servers import TransformedNetwork, transform
from .transitive import reduce_edge_list

#: A per-process WCET spec entry: a scalar, a per-job callable, or a
#: per-processor-class table (``{class name: value}`` or canonical
#: name-sorted pairs) for heterogeneous platforms.
WcetLike = Union[
    TimeLike,
    Callable[[str, int], TimeLike],
    Mapping[str, TimeLike],
    WcetTable,
]
WcetMap = Union[Mapping[str, WcetLike], TimeLike]

#: One entry of the tick-domain invocation sequence: ``(tick, rank, name, k)``.
#: Tuple order *is* the total order ``<J`` — sorted by invocation tick, then
#: FP' topological rank (higher priority first), then process name (for
#: FP'-unrelated ties — harmless, as unrelated processes get no edges), then
#: invocation count within a burst.
_TickInvocation = Tuple[int, int, str, int]


@dataclass(frozen=True)
class _Invocation:
    """One entry of the simulated invocation sequence of PN' (public,
    Fraction-domain view; the derivation itself stays in ticks)."""

    time: Time
    rank: int       # FP' topological rank of the process
    process: str
    k: int          # 1-based invocation count


def derive_task_graph(
    network: Network,
    wcet: WcetMap,
    horizon: Optional[TimeLike] = None,
    dense: bool = False,
    reduce_edges: bool = True,
) -> TaskGraph:
    """Derive the task graph of a subclass FPPN.

    Parameters
    ----------
    network:
        A network satisfying the Section III-A subclass restrictions.
    wcet:
        Either a single value (uniform WCET, like the 25 ms of Fig. 3), or a
        mapping ``process name -> value`` where each value is a time-like, a
        callable ``(process, k) -> time-like`` for per-job WCETs, or a
        per-processor-class table ``{class name: value}`` for heterogeneous
        platforms.  Table-carrying jobs materialise with ``wcet`` set to the
        conservative maximum over the classes and the resolved table in
        ``wcet_by_class`` — the tick domain spans every class value, so all
        class-resolved durations stay exactly representable.
    horizon:
        Frame length; defaults to the hyperperiod of ``PN'``.  Must be a
        positive multiple of every effective period when given (the paper
        always uses exactly ``H``).
    dense:
        Build the literal quadratic edge set of step 3 before reduction.
    reduce_edges:
        Apply step 5 (transitive reduction).  Disabled only by tests that
        verify the reduction itself.
    """
    pn = transform(network)
    H = _frame_length(pn, horizon)
    dom = _derivation_domain(pn, H)
    H_t = dom.to_ticks(H)
    sequence = _invocation_ticks(pn, dom, H_t, H)
    jobs = _make_jobs(pn, sequence, wcet, H_t, dom)
    edges = (_dense_edges if dense else _generating_edges)(pn, sequence)
    if reduce_edges:
        edges = reduce_edge_list(len(jobs), edges)
    return TaskGraph(jobs, edges, H)


def _frame_length(pn: TransformedNetwork, horizon: Optional[TimeLike]) -> Time:
    H = lcm_periods([period for period, _ in pn.effective.values()])
    if horizon is None:
        return H
    h = as_positive_time(horizon, "horizon")
    for name, (period, _) in pn.effective.items():
        if (h / period).denominator != 1:
            raise ModelError(
                f"horizon {h} is not a multiple of the effective period "
                f"{period} of process {name!r}"
            )
    return h


def _derivation_domain(pn: TransformedNetwork, H: Time) -> TickDomain:
    """The derivation's tick domain: every effective period, every process
    deadline (server deadlines are differences of these) and the frame
    length convert exactly."""
    values: List[TimeLike] = [H]
    for period, _ in pn.effective.values():
        values.append(period)
    for proc in pn.network.processes.values():
        values.append(proc.deadline)
    return TickDomain.for_values(values)


def _invocation_ticks(
    pn: TransformedNetwork, dom: TickDomain, H_t: int, H: Time
) -> List[_TickInvocation]:
    """Step 2 in ticks: the PN' job invocation order over ``[0, H)``.

    Plain tuple sort — the tick map is strictly monotone, so the resulting
    order is exactly the Fraction-domain total order ``<J``.
    """
    rank = {name: i for i, name in enumerate(pn.priority_order())}
    entries: List[_TickInvocation] = []
    for name, (period, burst) in pn.effective.items():
        T_t = dom.to_ticks(period)
        n_periods, rem = divmod(H_t, T_t)
        if rem:
            raise ModelError(
                f"frame {H} is not a multiple of period {period} of {name!r}"
            )
        r = rank[name]
        count = 0
        for slot in range(n_periods):
            t_t = slot * T_t
            for _ in range(burst):
                count += 1
                entries.append((t_t, r, name, count))
    entries.sort()
    return entries


def simulate_invocations(
    pn: TransformedNetwork, H: TimeLike
) -> List[_Invocation]:
    """Step 2: simulate the PN' job invocation order over ``[0, H)``.

    Public Fraction-domain view of the total order ``<J`` (the derivation
    itself consumes the integer-tick sequence directly).
    """
    H = as_positive_time(H, "frame length")
    dom = _derivation_domain(pn, H)
    from_ticks = dom.from_ticks
    memo: Dict[int, Time] = {}
    out: List[_Invocation] = []
    for t_t, rank, name, k in _invocation_ticks(pn, dom, dom.to_ticks(H), H):
        t = memo.get(t_t)
        if t is None:
            t = memo[t_t] = from_ticks(t_t)
        out.append(_Invocation(t, rank, name, k))
    return out


def _make_jobs(
    pn: TransformedNetwork,
    sequence: Sequence[_TickInvocation],
    wcet: WcetMap,
    H_t: int,
    dom: TickDomain,
) -> List[Job]:
    """Steps 3–4 job parameters, computed on integers.

    ``Ai`` equals the invocation tick (both are ``T' * floor((k-1)/m')``),
    ``Di = min(H, Ai + d)`` with the per-process relative deadline ``d``
    precomputed in ticks (``dp`` for periodic processes, ``dp - Tp'`` for
    servers).  Conversion back to exact rationals happens only here, at the
    graph boundary, memoised per distinct tick value.
    """
    wcet_of, class_tables = _wcet_resolver(pn.network, wcet)
    from_ticks = dom.from_ticks
    memo: Dict[int, Time] = {}

    # Per-process constants: (relative deadline ticks, burst, is_server).
    info: Dict[str, Tuple[int, int, bool]] = {}
    for name, (period, burst) in pn.effective.items():
        proc = pn.network.processes[name]
        dl_t = dom.to_ticks(proc.deadline)
        if proc.is_sporadic:
            dl_t -= dom.to_ticks(pn.servers[name].period)
        info[name] = (dl_t, burst, proc.is_sporadic)

    jobs: List[Job] = []
    append = jobs.append
    make = Job._of
    for arrival_t, _rank, name, k in sequence:
        dl_t, burst, is_server = info[name]
        deadline_t = arrival_t + dl_t
        if deadline_t > H_t:
            deadline_t = H_t
        arrival = memo.get(arrival_t)
        if arrival is None:
            arrival = memo[arrival_t] = from_ticks(arrival_t)
        deadline = memo.get(deadline_t)
        if deadline is None:
            deadline = memo[deadline_t] = from_ticks(deadline_t)
        if is_server:
            append(make(
                name, k, arrival, deadline, wcet_of(name, k),
                True, (k - 1) // burst + 1, (k - 1) % burst + 1,
                class_tables.get(name),
            ))
        else:
            append(make(
                name, k, arrival, deadline, wcet_of(name, k),
                False, None, None, class_tables.get(name),
            ))
    return jobs


def _wcet_resolver(
    network: Network, wcet: WcetMap
) -> Tuple[Callable[[str, int], Time], Dict[str, WcetTable]]:
    """Resolve the WCET spec to a per-job scalar plus per-class tables.

    The returned callable yields each job's scalar ``Ci``; for processes
    whose spec entry is a per-class table this is the maximum over the
    classes (the conservative, platform-blind worst case), and the
    normalised table itself lands in the second return value so the jobs
    can carry it.
    """
    if isinstance(wcet, Mapping):
        table: Dict[str, WcetLike] = dict(wcet)
        missing = sorted(set(network.processes) - set(table))
        if missing:
            raise ModelError(f"missing WCET for processes {missing!r}")
        # Per-class table entries normalise up front (they are data, not
        # code); everything else keeps the scalar/callable fast path.
        class_tables: Dict[str, WcetTable] = {}
        for process, entry in table.items():
            if callable(entry):
                continue
            if isinstance(entry, Mapping) or isinstance(entry, tuple):
                normalized = normalize_wcet_table(
                    entry, f"WCET of {process!r}"
                )
                class_tables[process] = normalized
        # Non-callable entries normalise once per process, not once per job.
        resolved: Dict[str, Time] = {}

        def resolve(process: str, k: int) -> Time:
            value = resolved.get(process)
            if value is not None:
                return value
            entry = class_tables.get(process)
            if entry is not None:
                value = max(v for _, v in entry)
                resolved[process] = value
                return value
            entry = table[process]
            if callable(entry):
                return as_positive_time(entry(process, k), f"WCET of {process}[{k}]")
            value = as_positive_time(entry, f"WCET of {process!r}")
            resolved[process] = value
            return value

        return resolve, class_tables

    uniform = as_positive_time(wcet, "WCET")
    return (lambda process, k: uniform), {}


def _generating_edges(
    pn: TransformedNetwork, sequence: Sequence[_TickInvocation]
) -> List[Tuple[int, int]]:
    """Compact generating set with the same transitive closure as step 3."""
    by_process: Dict[str, List[int]] = {}
    for idx, inv in enumerate(sequence):
        by_process.setdefault(inv[2], []).append(idx)

    edges: List[Tuple[int, int]] = []
    # Same process: chain of consecutive jobs.
    for indices in by_process.values():
        edges.extend(zip(indices, indices[1:]))

    # Related pairs: each job -> the next job of the partner process.
    names = sorted(by_process)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            if not pn.fp_related(a, b):
                continue
            edges.extend(_next_of_partner(by_process[a], by_process[b]))
            edges.extend(_next_of_partner(by_process[b], by_process[a]))
    return sorted(set(edges))


def _next_of_partner(
    from_indices: Sequence[int], to_indices: Sequence[int]
) -> List[Tuple[int, int]]:
    """For each index in *from_indices*, edge to the first larger index in
    *to_indices* (both sequences are sorted)."""
    out: List[Tuple[int, int]] = []
    j = 0
    for i in from_indices:
        while j < len(to_indices) and to_indices[j] < i:
            j += 1
        if j == len(to_indices):
            break
        out.append((i, to_indices[j]))
    return out


def _dense_edges(
    pn: TransformedNetwork, sequence: Sequence[_TickInvocation]
) -> List[Tuple[int, int]]:
    """The literal step-3 rule: all ordered pairs of related jobs."""
    n = len(sequence)
    edges: List[Tuple[int, int]] = []
    for i in range(n):
        a = sequence[i][2]
        for j in range(i + 1, n):
            b = sequence[j][2]
            if a == b or pn.fp_related(a, b):
                edges.append((i, j))
    return edges
