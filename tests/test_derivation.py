"""Tests for task-graph derivation (Section III-A steps 1-5).

The centrepiece is the exact reproduction of Fig. 3 from the Fig. 1 network;
the generating-vs-dense edge construction equivalence is checked on the
paper networks and on random workloads.
"""

from fractions import Fraction

import pytest

from repro.apps import build_fig1_network, fig1_wcets, random_network, random_wcets
from repro.core import Network
from repro.errors import ModelError
from repro.taskgraph import (
    derive_task_graph,
    transitive_closure_sets,
)


@pytest.fixture(scope="module")
def fig3():
    return derive_task_graph(build_fig1_network(), fig1_wcets())


class TestFig3Exact:
    """The derived task graph must be exactly Fig. 3 of the paper."""

    def test_hyperperiod(self, fig3):
        assert fig3.hyperperiod == 200

    def test_ten_jobs(self, fig3):
        assert len(fig3) == 10

    def test_job_parameters_match_figure(self, fig3):
        expected = {
            "InputA[1]": (0, 200, 25),
            "FilterA[1]": (0, 100, 25),
            "FilterA[2]": (100, 200, 25),
            "FilterB[1]": (0, 200, 25),
            "NormA[1]": (0, 200, 25),
            "OutputA[1]": (0, 200, 25),
            "OutputB[1]": (0, 100, 25),
            "OutputB[2]": (100, 200, 25),
            "CoefB[1]": (0, 200, 25),
            "CoefB[2]": (0, 200, 25),
        }
        actual = {
            j.name: (int(j.arrival), int(j.deadline), int(j.wcet)) for j in fig3.jobs
        }
        assert actual == expected

    def test_coefb_jobs_are_servers(self, fig3):
        j1, j2 = fig3.job("CoefB[1]"), fig3.job("CoefB[2]")
        assert j1.is_server and j2.is_server
        assert (j1.subset_index, j1.slot) == (1, 1)
        assert (j2.subset_index, j2.slot) == (1, 2)

    def test_coefb_deadline_truncated(self, fig3):
        # d' = 700 - 200 = 500, truncated to H = 200.
        assert fig3.job("CoefB[1]").deadline == 200

    def test_redundant_inputa_norma_edge_removed(self, fig3):
        """The paper: 'the edge is redundant due to a path from InputA to
        NormA' — transitive reduction must have removed it."""
        assert not fig3.has_edge_named("InputA[1]", "NormA[1]")
        # but the path exists
        i = fig3.index_of("InputA[1]")
        assert fig3.index_of("NormA[1]") in fig3.reachable_from(i)

    def test_expected_edges(self, fig3):
        expected = {
            ("CoefB[1]", "CoefB[2]"),
            ("CoefB[2]", "FilterB[1]"),
            ("InputA[1]", "FilterA[1]"),
            ("InputA[1]", "FilterB[1]"),
            ("FilterA[1]", "NormA[1]"),
            ("FilterB[1]", "OutputB[1]"),
            ("NormA[1]", "OutputA[1]"),
            ("NormA[1]", "FilterA[2]"),
            ("OutputB[1]", "OutputB[2]"),
        }
        actual = {
            (fig3.jobs[i].name, fig3.jobs[j].name) for i, j in fig3.edges()
        }
        assert actual == expected

    def test_graph_is_reduced(self, fig3):
        assert fig3.is_transitively_reduced()

    def test_jobs_per_process_is_mp_times_h_over_tp(self, fig3):
        """'Every process is represented by mp * H/Tp vertices.'"""
        counts = {}
        for j in fig3.jobs:
            counts[j.process] = counts.get(j.process, 0) + 1
        assert counts == {
            "InputA": 1, "FilterA": 2, "NormA": 1, "OutputA": 1,
            "FilterB": 1, "OutputB": 2, "CoefB": 2,
        }


class TestEdgeRuleEquivalence:
    """The compact generating construction must yield the same reduced graph
    as the literal quadratic rule of step 3."""

    @pytest.mark.parametrize("builder", [build_fig1_network])
    def test_paper_network(self, builder):
        net = builder()
        sparse = derive_task_graph(net, 25, dense=False)
        dense = derive_task_graph(net, 25, dense=True)
        assert sparse.edges() == dense.edges()

    @pytest.mark.parametrize("seed", range(6))
    def test_random_networks(self, seed):
        net = random_network(seed=seed, n_periodic=4, n_sporadic=2)
        wcets = random_wcets(net, seed=seed)
        sparse = derive_task_graph(net, wcets, dense=False)
        dense = derive_task_graph(net, wcets, dense=True)
        assert sparse.edges() == dense.edges()

    def test_unreduced_closures_match(self):
        net = build_fig1_network()
        sparse = derive_task_graph(net, 25, dense=False, reduce_edges=False)
        dense = derive_task_graph(net, 25, dense=True, reduce_edges=False)
        assert transitive_closure_sets(sparse) == transitive_closure_sets(dense)


class TestWcetHandling:
    def test_uniform_wcet(self):
        g = derive_task_graph(build_fig1_network(), 25)
        assert all(j.wcet == 25 for j in g.jobs)

    def test_per_process_map(self):
        wcets = fig1_wcets()
        wcets["InputA"] = 7
        g = derive_task_graph(build_fig1_network(), wcets)
        assert g.job("InputA[1]").wcet == 7
        assert g.job("FilterA[1]").wcet == 25

    def test_per_job_callable(self):
        wcets = fig1_wcets()
        wcets["FilterA"] = lambda p, k: 10 * k
        g = derive_task_graph(build_fig1_network(), wcets)
        assert g.job("FilterA[1]").wcet == 10
        assert g.job("FilterA[2]").wcet == 20

    def test_missing_process_rejected(self):
        with pytest.raises(ModelError, match="missing WCET"):
            derive_task_graph(build_fig1_network(), {"InputA": 25})

    def test_nonpositive_wcet_rejected(self):
        with pytest.raises(ValueError):
            derive_task_graph(build_fig1_network(), 0)


class TestHorizon:
    def test_default_is_hyperperiod(self):
        g = derive_task_graph(build_fig1_network(), 25)
        assert g.hyperperiod == 200

    def test_multiple_hyperperiods(self):
        g1 = derive_task_graph(build_fig1_network(), 25)
        g2 = derive_task_graph(build_fig1_network(), 25, horizon=400)
        assert len(g2) == 2 * len(g1)
        assert g2.hyperperiod == 400

    def test_non_multiple_horizon_rejected(self):
        with pytest.raises(ModelError, match="not a multiple"):
            derive_task_graph(build_fig1_network(), 25, horizon=300)

    def test_deadlines_truncated_to_horizon(self):
        g = derive_task_graph(build_fig1_network(), 25, horizon=400)
        # CoefB[3] arrives at 200 with d'=500 -> 700, truncated to 400.
        assert g.job("CoefB[3]").deadline == 400


class TestOrdering:
    def test_jobs_sorted_by_arrival(self):
        g = derive_task_graph(build_fig1_network(), 25)
        arrivals = [j.arrival for j in g.jobs]
        assert arrivals == sorted(arrivals)

    def test_same_time_order_respects_fp_rank(self):
        g = derive_task_graph(build_fig1_network(), 25)
        order = [j.name for j in g.jobs]
        # CoefB (server, above FilterB in FP') precedes FilterB; InputA
        # precedes FilterA.
        assert order.index("CoefB[2]") < order.index("FilterB[1]")
        assert order.index("InputA[1]") < order.index("FilterA[1]")

    def test_edges_follow_total_order(self):
        g = derive_task_graph(build_fig1_network(), 25)
        for i, j in g.edges():
            assert i < j
