"""The FFT streaming application of Section V-A (Fig. 5).

A 4-point complex FFT as a process network of 14 processes:

* ``generator`` — reads external sample ``[k]`` (a vector of four complex
  numbers) and distributes it, bit-reversed, to stage 0;
* ``FFT2_s_j`` for ``s in 0..2``, ``j in 0..3`` — the 3x4 grid of Fig. 5:
  stage 0 is the bit-reversal/copy stage, stages 1 and 2 are radix-2
  decimation-in-time butterfly stages with spans 1 and 2;
* ``consumer`` — assembles the four spectrum values into the external
  output sample.

All channels are FIFOs whose direction coincides with the functional
priority relation, so (as the paper observes) the task graph maps one-to-one
onto the process-network graph: all processes share ``Tp = dp = 200 ms`` and
every process contributes exactly one job per frame — 14 jobs, matching the
runtime's "arrival of 14 jobs" per frame.

The arithmetic is a genuine FFT: the test suite checks the streamed results
against ``numpy.fft.fft`` sample-for-sample.

WCETs default to 14 ms for the FFT2 grid and 9 ms for generator/consumer,
giving the paper's load of 0.93; the frame-arrival overhead of the MPPA
runtime (41 ms first frame / 20 ms after) is modelled by
:class:`repro.runtime.overheads.OverheadModel.mppa_like`.  A granularity
scale factor reproduces the paper's closing observation that coarser jobs
shrink the relative overhead (benchmark E7).
"""

from __future__ import annotations

import cmath
from typing import Any, Dict, List, Sequence, Tuple

from ..core.channels import ChannelKind, is_no_data
from ..core.invocations import Stimulus
from ..core.network import Network
from ..core.process import JobContext
from ..core.timebase import Time, TimeLike, as_positive_time
from ..experiment.scenario import Scenario, register_workload

#: Number of FFT points and stage geometry of Fig. 5.
FFT_POINTS = 4
FFT_STAGES = 3          # bit-reverse stage + 2 butterfly stages
NODES_PER_STAGE = 4

#: Default timing (ms): Tp = dp = 200; grid nodes ~14 ms; endpoints 9 ms.
DEFAULT_PERIOD_MS = 200
GRID_WCET_MS = 14
ENDPOINT_WCET_MS = 9

_BIT_REVERSED = (0, 2, 1, 3)


def _twiddle(stage: int, j: int) -> complex:
    """DIT twiddle factor of node ``j`` in butterfly stage ``stage`` (1 or 2).

    For span ``h = 2**(stage-1)`` the butterfly group size is ``2h`` and the
    factor is ``exp(-2*pi*i * (j mod h) / (2h))``.
    """
    h = 2 ** (stage - 1)
    return cmath.exp(-2j * cmath.pi * (j % h) / (2 * h))


def _generator(ctx: JobContext) -> None:
    """Distribute sample [k], bit-reversed, to the four stage-0 nodes."""
    vec = ctx.read_input("fft_in")
    if is_no_data(vec):
        vec = (0j,) * FFT_POINTS
    if len(vec) != FFT_POINTS:
        raise ValueError(f"FFT input sample must have {FFT_POINTS} values")
    for j in range(FFT_POINTS):
        ctx.write(f"gen->FFT2_0_{j}", complex(vec[_BIT_REVERSED[j]]))


def _make_stage0(j: int):
    """Stage 0 node: forward the (already bit-reversed) value to stage 1."""

    def kernel(ctx: JobContext) -> None:
        v = ctx.read(f"gen->FFT2_0_{j}")
        if is_no_data(v):
            v = 0j
        partner = j ^ 1  # span of the next stage
        ctx.write(f"FFT2_0_{j}->FFT2_1_{j}", v)
        ctx.write(f"FFT2_0_{j}->FFT2_1_{partner}", v)

    return kernel


def _make_butterfly(stage: int, j: int):
    """Butterfly node of stage 1 or 2 computing element ``j``.

    With span ``h``: the node owning element ``j`` combines its own input
    ``a`` (element ``j`` of the previous stage) and its partner's input
    ``b`` (element ``j ^ h``) as ``a + w*b`` when ``j``'s bit ``h`` is 0
    and ``a_partner - w*b_partner``... concretely, for the upper element
    ``u = j & ~h`` and lower ``l = j | h``::

        out[u] = in[u] + w * in[l]
        out[l] = in[u] - w * in[l]

    Each node reads both inputs from dedicated FIFOs and emits only its own
    element ``j``.
    """
    h = 2 ** (stage - 1)
    w = _twiddle(stage, j)
    upper = j & ~h
    lower = j | h
    is_upper = j == upper

    def kernel(ctx: JobContext) -> None:
        a = ctx.read(f"FFT2_{stage - 1}_{upper}->FFT2_{stage}_{j}")
        b = ctx.read(f"FFT2_{stage - 1}_{lower}->FFT2_{stage}_{j}")
        if is_no_data(a):
            a = 0j
        if is_no_data(b):
            b = 0j
        value = a + w * b if is_upper else a - w * b
        if stage < FFT_STAGES - 1:
            next_span = 2 ** stage
            partner = j ^ next_span
            ctx.write(f"FFT2_{stage}_{j}->FFT2_{stage + 1}_{j}", value)
            ctx.write(f"FFT2_{stage}_{j}->FFT2_{stage + 1}_{partner}", value)
        else:
            ctx.write(f"FFT2_{stage}_{j}->consumer", value)

    return kernel


def _consumer(ctx: JobContext) -> None:
    """Assemble the four spectrum values into output sample [k]."""
    out: List[complex] = []
    for j in range(FFT_POINTS):
        v = ctx.read(f"FFT2_{FFT_STAGES - 1}_{j}->consumer")
        out.append(0j if is_no_data(v) else v)
    ctx.write_output(tuple(out), "fft_out")


def build_fft_network(
    period: TimeLike = DEFAULT_PERIOD_MS,
) -> Network:
    """Construct the Fig. 5 network with ``Tp = dp = period`` everywhere."""
    T = as_positive_time(period, "period")
    net = Network("fft-streaming")
    net.add_periodic("generator", period=T, kernel=_generator)
    for s in range(FFT_STAGES):
        for j in range(NODES_PER_STAGE):
            kernel = _make_stage0(j) if s == 0 else _make_butterfly(s, j)
            net.add_periodic(f"FFT2_{s}_{j}", period=T, kernel=kernel)
    net.add_periodic("consumer", period=T, kernel=_consumer)

    # Channels and functional priorities follow the dataflow direction.
    for j in range(NODES_PER_STAGE):
        net.connect("generator", f"FFT2_0_{j}", f"gen->FFT2_0_{j}")
        net.add_priority("generator", f"FFT2_0_{j}")
    for s in range(1, FFT_STAGES):
        span = 2 ** (s - 1)
        for j in range(NODES_PER_STAGE):
            writer = f"FFT2_{s - 1}_{j}"
            for target in (j, j ^ span):
                reader = f"FFT2_{s}_{target}"
                net.connect(writer, reader, f"{writer}->{reader}")
                net.add_priority(writer, reader)
    for j in range(NODES_PER_STAGE):
        writer = f"FFT2_{FFT_STAGES - 1}_{j}"
        net.connect(writer, "consumer", f"{writer}->consumer")
        net.add_priority(writer, "consumer")

    net.add_external_input("generator", "fft_in")
    net.add_external_output("consumer", "fft_out")
    net.validate()
    return net


def fft_wcets(scale: TimeLike = 1) -> Dict[str, Time]:
    """WCET map: 14 ms per grid node, 9 ms for generator/consumer, scaled.

    ``scale`` models job granularity (samples aggregated per job): period
    and WCETs grow together, the frame-arrival overhead does not — the E7
    sweep.  Total per frame at scale 1: 9 + 12*14 + 9 = 186 ms, i.e. a load
    of 186/200 = 0.93, the paper's figure.
    """
    s = as_positive_time(scale, "scale")
    wcets: Dict[str, Time] = {
        "generator": ENDPOINT_WCET_MS * s,
        "consumer": ENDPOINT_WCET_MS * s,
    }
    for stage in range(FFT_STAGES):
        for j in range(NODES_PER_STAGE):
            wcets[f"FFT2_{stage}_{j}"] = GRID_WCET_MS * s
    return wcets


def fft_stimulus(vectors: Sequence[Sequence[complex]]) -> Stimulus:
    """Stimulus feeding the given 4-point vectors as samples 1..n."""
    normalized: List[Tuple[complex, ...]] = []
    for vec in vectors:
        if len(vec) != FFT_POINTS:
            raise ValueError(f"each FFT input vector needs {FFT_POINTS} entries")
        normalized.append(tuple(complex(v) for v in vec))
    return Stimulus(input_samples={"fft_in": normalized})


def scenario(
    n_frames: int = 8,
    processors: int = 2,
    **overrides: Any,
) -> Scenario:
    """The Fig. 5 FFT streaming use case as a ready-to-run :class:`Scenario`.

    Defaults reproduce Section V-A: load 0.93 on two processors with the
    MPPA-like frame-arrival overheads, streaming a deterministic ramp of
    4-point complex vectors (one per frame).  Override any field by
    keyword (e.g. ``overheads=OverheadModel.none()`` for the ideal
    platform).
    """
    from ..runtime.overheads import OverheadModel

    vectors = [[k, k + 1j, -k, 0.5 * k] for k in range(n_frames)]
    base: Dict[str, Any] = dict(
        workload="fft",
        wcet=fft_wcets(),
        processors=processors,
        n_frames=n_frames,
        stimulus=fft_stimulus(vectors),
        overheads=OverheadModel.mppa_like(),
        label="fft",
    )
    base.update(overrides)
    return Scenario(**base)


def reference_fft(vec: Sequence[complex]) -> Tuple[complex, ...]:
    """Direct O(n^2) DFT used as an independent oracle in tests."""
    n = len(vec)
    out = []
    for q in range(n):
        acc = 0j
        for t, v in enumerate(vec):
            acc += complex(v) * cmath.exp(-2j * cmath.pi * q * t / n)
        out.append(acc)
    return tuple(out)


register_workload("fft", build_fft_network)
