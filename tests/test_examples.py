"""The examples are part of the public contract: they must run clean."""

import json
import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))
CLI_CONFIGS = sorted(EXAMPLES_DIR.glob("*.json"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout  # every example narrates what it does


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert {"quickstart.py", "fft_streaming.py", "fms_avionics.py",
            "deterministic_replay.py", "resilient_sweep.py",
            "sweep_service.py"} <= names
    assert {p.name for p in CLI_CONFIGS} >= {
        "fig1_run.json", "fig1_sweep.json"
    }


@pytest.mark.parametrize("config", CLI_CONFIGS, ids=lambda p: p.name)
def test_cli_demo_configs_run(config):
    # Every shipped config must execute through the CLI; matrix configs
    # go through `sweep`, scenario configs through `run`.
    command = (
        "sweep" if "matrix" in json.loads(config.read_text()) else "run"
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro", command, str(config), "--progress"],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    document = json.loads(proc.stdout)
    assert document["format"] == "fppn-sweep"
    assert document["rows"]
    assert "done:" in proc.stderr
