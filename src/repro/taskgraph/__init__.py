"""Task-graph derivation and analysis (Section III of the paper)."""

from .asap_alap import (
    TimingBounds,
    compute_bounds,
    critical_path_length,
    precedence_feasible,
)
from .derivation import derive_task_graph, simulate_invocations
from .graph import TaskGraph
from .jobs import Job
from .load import LoadResult, necessary_condition, task_graph_load, utilization
from .servers import ServerSpec, TransformedNetwork, derive_server, transform
from .transitive import transitive_closure_sets, transitive_reduction

__all__ = [
    "TimingBounds",
    "compute_bounds",
    "critical_path_length",
    "precedence_feasible",
    "derive_task_graph",
    "simulate_invocations",
    "TaskGraph",
    "Job",
    "LoadResult",
    "necessary_condition",
    "task_graph_load",
    "utilization",
    "ServerSpec",
    "TransformedNetwork",
    "derive_server",
    "transform",
    "transitive_closure_sets",
    "transitive_reduction",
]
