"""Scenario-first experiment API: describe a run once, sweep it at scale.

This package is the scenario-scale entry point to the paper's pipeline:

* :class:`Scenario` — a frozen, serialisable description of one run
  (workload, WCETs, processors, execution-time model, overheads,
  stimulus, frame count, executor flags);
* :class:`Experiment` — a lazy facade computing and caching the pipeline
  stages (:meth:`~Experiment.task_graph`, :meth:`~Experiment.schedule`,
  :meth:`~Experiment.run`, :meth:`~Experiment.check_determinism`,
  :meth:`~Experiment.report`) with observers attachable at any stage;
* :class:`ScenarioMatrix` + :func:`run_sweep` — STOMP-style cartesian
  sweeps over scenario fields with stage-aware derivation/schedule reuse
  and lean observer-streaming execution.

JSON interchange for scenarios and sweep results lives in
:mod:`repro.io.json_io` (``scenario_to_dict`` / ``sweep_result_to_dict``
and inverses).
"""

from .scenario import (
    Scenario,
    available_workloads,
    register_workload,
    resolve_workload,
)
from .experiment import Experiment, PipelineCache
from .sweep import (
    DATA_METRICS,
    DEFAULT_METRICS,
    ScenarioMatrix,
    SweepCell,
    SweepResult,
    SweepRow,
    SweepStats,
    TIMING_METRICS,
    run_sweep,
)

__all__ = [
    "Scenario",
    "available_workloads",
    "register_workload",
    "resolve_workload",
    "Experiment",
    "PipelineCache",
    "DATA_METRICS",
    "DEFAULT_METRICS",
    "ScenarioMatrix",
    "SweepCell",
    "SweepResult",
    "SweepRow",
    "SweepStats",
    "TIMING_METRICS",
    "run_sweep",
]
