"""The avionics Flight Management System (FMS) case study of Section V-B.

The FMS subsystem (Fig. 7) computes the *best computed position* (BCP) and
predicts aircraft performance from sensor data and sporadic pilot
configuration commands.  Processes (period / burst as in Fig. 7):

====================  ===========================  =========================
process               generator                    role
====================  ===========================  =========================
SensorInput           periodic 200 ms              acquire 4 sensor feeds
AnemoConfig           sporadic 2 per 200 ms        configure anemometer
GPSConfig             sporadic 2 per 200 ms        configure GPS
IRSConfig             sporadic 2 per 200 ms        configure inertial unit
DopplerConfig         sporadic 2 per 200 ms        configure doppler radar
HighFreqBCP           periodic 200 ms              fast position fusion
LowFreqBCP            periodic 5000 ms             slow position refinement
MagnDeclin            periodic 1600 ms             magnetic declination
BCPConfig             sporadic 2 per 200 ms        configure BCP fusion
Performance           periodic 1000 ms             fuel/performance model
MagnDeclinConfig      sporadic 5 per 1600 ms       configure declination
PerformanceConfig     sporadic 5 per 1000 ms       configure performance
====================  ===========================  =========================

As in the paper: sporadic processes have *less* functional priority than
their periodic users, and the relative priority of the periodic processes is
rate-monotonic (making the FPPN functionally equivalent to the original
uniprocessor fixed-priority prototype — verified by testing here too).

The paper reduces the 40 s hyperperiod to 10 s by running MagnDeclin at
400 ms and executing its main body once per four invocations;
:func:`build_fms_network` exposes both variants via ``reduced_hyperperiod``.
With the reduced variant the derived task graph contains exactly **812
jobs** (the paper's number: 50 SensorInput + 4x100 sensor-config servers +
50 HighFreqBCP + 100 BCPConfig servers + 2 LowFreqBCP + 25 MagnDeclin +
125 MagnDeclinConfig servers + 10 Performance + 50 PerformanceConfig
servers).

Sporadic deadlines are not listed in the paper; we use ``d_p = 2 T_p`` so
that the server deadline correction ``d_p - T_u`` stays positive with the
plain user period (the paper's construction implicitly requires
``d_p > T_u``, footnote 3).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Dict, List, Optional

from ..core.channels import ChannelKind, is_no_data
from ..core.invocations import Stimulus, random_stimulus
from ..core.network import Network
from ..core.process import JobContext
from ..core.timebase import Time, TimeLike
from ..experiment.scenario import Scenario, register_workload

#: Hyperperiods of the two Fig. 7 variants (ms): the paper's reduced 10 s
#: frame and the original 40 s one whose code-generation cost motivated the
#: reduction (benchmark E9).
FMS_HYPERPERIOD_MS = 10_000
FMS_HYPERPERIOD_40S_MS = 40_000

#: Default WCETs (ms) — calibrated so the reduced task graph's load lands
#: near the paper's ~0.23 (well below 1: single-processor feasible).
FMS_WCETS_MS: Dict[str, TimeLike] = {
    "SensorInput": 5,
    "AnemoConfig": 1,
    "GPSConfig": 1,
    "IRSConfig": 1,
    "DopplerConfig": 1,
    "HighFreqBCP": 8,
    "LowFreqBCP": 20,
    "MagnDeclin": 6,
    "BCPConfig": 1,
    "Performance": 10,
    "MagnDeclinConfig": 1,
    "PerformanceConfig": 1,
}

_SENSORS = ("Anemo", "GPS", "IRS", "Doppler")


# ---------------------------------------------------------------------------
# kernels
# ---------------------------------------------------------------------------
def _make_config(channel: str, input_name: str):
    """Sporadic configuration process: publish pilot command [k]."""

    def kernel(ctx: JobContext) -> None:
        cmd = ctx.read_input(input_name)
        if not is_no_data(cmd):
            ctx.write(channel, cmd)

    return kernel


def _sensor_input(ctx: JobContext) -> None:
    """Acquire the 4 sensor feeds, apply per-sensor config offsets."""
    raw = ctx.read_input("sensor_feed")
    if is_no_data(raw):
        raw = (0.0,) * len(_SENSORS)
    for i, sensor in enumerate(_SENSORS):
        cfg = ctx.read(f"{sensor.lower()}_cfg")
        offset = 0.0 if is_no_data(cfg) else cfg
        ctx.write(f"{sensor}Data", raw[i] + offset)


def _high_freq_bcp(ctx: JobContext) -> None:
    """Fast position fusion of the four sensor blackboards."""
    cfg = ctx.read("bcp_cfg")
    weight = 0.5 if is_no_data(cfg) else cfg
    values = []
    for sensor in _SENSORS:
        v = ctx.read(f"{sensor}Data")
        values.append(0.0 if is_no_data(v) else v)
    fused = sum(values) / len(values)
    slow = ctx.read("bcp_low")
    if not is_no_data(slow):
        fused = weight * fused + (1.0 - weight) * slow
    ctx.write("BCPData", fused)
    ctx.write("bcp_high", fused)
    ctx.write_output(fused, "BCPOut")


def _low_freq_bcp(ctx: JobContext) -> None:
    """Slow refinement feeding back into the fast loop."""
    fast = ctx.read("bcp_high")
    decl = ctx.read("magn_decl")
    base = 0.0 if is_no_data(fast) else fast
    corr = 0.0 if is_no_data(decl) else decl
    state = ctx.get("state", 0.0)
    state = 0.8 * state + 0.2 * (base + corr)
    ctx.assign("state", state)
    ctx.write("bcp_low", state)


def _make_magn_declin(body_every: int):
    """Magnetic declination; main body executed once per *body_every* jobs.

    ``body_every = 4`` reproduces the paper's period-reduction trick
    (400 ms invocations, 1600 ms work).
    """

    def kernel(ctx: JobContext) -> None:
        count = ctx.get("count", 0) + 1
        ctx.assign("count", count)
        if count % body_every != 0 and body_every > 1:
            return
        cfg = ctx.read("magn_cfg")
        table = 0.1 if is_no_data(cfg) else cfg
        decl = ctx.get("decl", 0.0)
        decl = 0.9 * decl + table
        ctx.assign("decl", decl)
        ctx.write("magn_decl", decl)

    return kernel


def _performance(ctx: JobContext) -> None:
    """Fuel/performance prediction from the current BCP."""
    cfg = ctx.read("perf_cfg")
    # commands are in [-1, 1]; map to a positive burn-rate multiplier
    burn = 1.0 if is_no_data(cfg) else 1.0 + 0.5 * cfg
    bcp = ctx.read("BCPData")
    position = 0.0 if is_no_data(bcp) else bcp
    fuel = ctx.get("fuel", 1000.0)
    fuel -= burn * (1.0 + abs(position) * 0.01)
    ctx.assign("fuel", fuel)
    ctx.write_output(fuel, "PerformanceData")


# ---------------------------------------------------------------------------
# network
# ---------------------------------------------------------------------------
def build_fms_network(reduced_hyperperiod: bool = True) -> Network:
    """Construct the Fig. 7 FMS network.

    With ``reduced_hyperperiod`` (default) MagnDeclin runs at 400 ms with its
    main body once per four invocations — hyperperiod 10 s, 812 jobs; with
    ``False`` it runs at the original 1600 ms — hyperperiod 40 s (the variant
    whose code-generation cost the paper found too high, benchmark E9).
    """
    net = Network("fms-avionics")
    magn_period = 400 if reduced_hyperperiod else 1600
    body_every = 4 if reduced_hyperperiod else 1

    net.add_periodic("SensorInput", period=200, kernel=_sensor_input)
    net.add_periodic("HighFreqBCP", period=200, kernel=_high_freq_bcp)
    net.add_periodic("LowFreqBCP", period=5000, kernel=_low_freq_bcp)
    net.add_periodic("MagnDeclin", period=magn_period,
                     kernel=_make_magn_declin(body_every))
    net.add_periodic("Performance", period=1000, kernel=_performance)

    net.add_sporadic("AnemoConfig", min_period=200, deadline=400, burst=2,
                     kernel=_make_config("anemo_cfg", "anemo_cmd"))
    net.add_sporadic("GPSConfig", min_period=200, deadline=400, burst=2,
                     kernel=_make_config("gps_cfg", "gps_cmd"))
    net.add_sporadic("IRSConfig", min_period=200, deadline=400, burst=2,
                     kernel=_make_config("irs_cfg", "irs_cmd"))
    net.add_sporadic("DopplerConfig", min_period=200, deadline=400, burst=2,
                     kernel=_make_config("doppler_cfg", "doppler_cmd"))
    net.add_sporadic("BCPConfig", min_period=200, deadline=400, burst=2,
                     kernel=_make_config("bcp_cfg", "bcp_cmd"))
    net.add_sporadic("MagnDeclinConfig", min_period=1600,
                     deadline=magn_period * 2, burst=5,
                     kernel=_make_config("magn_cfg", "magn_cmd"))
    net.add_sporadic("PerformanceConfig", min_period=1000, deadline=2000,
                     burst=5, kernel=_make_config("perf_cfg", "perf_cmd"))

    # Sensor-configuration blackboards into SensorInput (its 4 sporadics).
    for sensor in _SENSORS:
        net.connect(f"{sensor}Config", "SensorInput", f"{sensor.lower()}_cfg",
                    kind=ChannelKind.BLACKBOARD)
    # Sensor data blackboards into the fast BCP loop.
    for sensor in _SENSORS:
        net.connect("SensorInput", "HighFreqBCP", f"{sensor}Data",
                    kind=ChannelKind.BLACKBOARD)
    # BCP pipeline with feedback, declination, configuration, performance.
    net.connect("HighFreqBCP", "LowFreqBCP", "bcp_high",
                kind=ChannelKind.BLACKBOARD)
    net.connect("LowFreqBCP", "HighFreqBCP", "bcp_low",
                kind=ChannelKind.BLACKBOARD)
    net.connect("MagnDeclin", "LowFreqBCP", "magn_decl",
                kind=ChannelKind.BLACKBOARD)
    net.connect("BCPConfig", "HighFreqBCP", "bcp_cfg",
                kind=ChannelKind.BLACKBOARD)
    net.connect("HighFreqBCP", "Performance", "BCPData",
                kind=ChannelKind.BLACKBOARD)
    net.connect("MagnDeclinConfig", "MagnDeclin", "magn_cfg",
                kind=ChannelKind.BLACKBOARD)
    net.connect("PerformanceConfig", "Performance", "perf_cfg",
                kind=ChannelKind.BLACKBOARD)

    # Functional priority: rate-monotonic total order over the periodic
    # processes (ties by dataflow: SensorInput feeds HighFreqBCP)...
    net.add_priority_chain(
        "SensorInput", "HighFreqBCP", "MagnDeclin", "Performance", "LowFreqBCP"
    )
    for hi, lo in (
        ("SensorInput", "MagnDeclin"),
        ("SensorInput", "Performance"),
        ("SensorInput", "LowFreqBCP"),
        ("HighFreqBCP", "Performance"),
        ("HighFreqBCP", "LowFreqBCP"),
        ("MagnDeclin", "LowFreqBCP"),
    ):
        net.add_priority(hi, lo)
    # ... and sporadic configs *below* their periodic users.
    for sensor in _SENSORS:
        net.add_priority("SensorInput", f"{sensor}Config")
    net.add_priority("HighFreqBCP", "BCPConfig")
    net.add_priority("MagnDeclin", "MagnDeclinConfig")
    net.add_priority("Performance", "PerformanceConfig")

    # External channels: sensor feed in, pilot commands in, BCP and
    # performance predictions out.
    net.add_external_input("SensorInput", "sensor_feed")
    net.add_external_input("AnemoConfig", "anemo_cmd")
    net.add_external_input("GPSConfig", "gps_cmd")
    net.add_external_input("IRSConfig", "irs_cmd")
    net.add_external_input("DopplerConfig", "doppler_cmd")
    net.add_external_input("BCPConfig", "bcp_cmd")
    net.add_external_input("MagnDeclinConfig", "magn_cmd")
    net.add_external_input("PerformanceConfig", "perf_cmd")
    net.add_external_output("HighFreqBCP", "BCPOut")
    net.add_external_output("Performance", "PerformanceData")

    net.validate_taskgraph_subclass()
    return net


def fms_wcets() -> Dict[str, TimeLike]:
    """The calibrated WCET map (copy — safe to mutate)."""
    return dict(FMS_WCETS_MS)


def fms_scheduling_priorities(network: Network) -> Dict[str, int]:
    """Fixed priorities of the original uniprocessor prototype.

    Rate-monotonic over all processes with sporadic configs ranked right
    below their users — exactly the total order of the FPPN functional
    priorities, which is what makes the two implementations functionally
    equivalent (Section V-B).
    """
    order = network.priority_order()
    return {name: i for i, name in enumerate(order)}


def fms_stimulus(
    network: Network,
    horizon: TimeLike,
    seed: int = 2015,
    intensity: float = 0.6,
) -> Stimulus:
    """Reproducible pilot-command stimulus over ``[0, horizon)``.

    Sensor samples are a smooth trajectory; sporadic command arrivals are
    synthesized within each generator's ``(m, T)`` constraint.
    """

    def sample_value(channel: str, k: int, rng) -> object:
        if channel == "sensor_feed":
            base = float(k)
            return (base, base + 0.5, base - 0.25, base * 0.75)
        return round(rng.uniform(-1.0, 1.0), 3)

    return random_stimulus(
        network, horizon, seed=seed, intensity=intensity, sample_value=sample_value
    )


def scenario(
    n_frames: int = 5,
    processors: int = 1,
    seed: int = 2015,
    **overrides: Any,
) -> Scenario:
    """The Section V-B FMS case study as a ready-to-run :class:`Scenario`.

    Defaults reproduce the paper's setting: the reduced 10 s hyperperiod
    (812 jobs per frame), calibrated WCETs at load ~0.23 on a single
    processor, and a reproducible pilot-command stimulus over the
    simulated horizon (``seed`` keys it).  Override any scenario field by
    keyword.
    """
    stimulus = overrides.pop("stimulus", None)
    if stimulus is None:
        stimulus = fms_stimulus(
            build_fms_network(), FMS_HYPERPERIOD_MS * n_frames, seed=seed
        )
    base: Dict[str, Any] = dict(
        workload="fms",
        wcet=fms_wcets(),
        processors=processors,
        n_frames=n_frames,
        stimulus=stimulus,
        label="fms",
    )
    base.update(overrides)
    return Scenario(**base)


register_workload("fms", build_fms_network)
register_workload(
    "fms-40s", lambda: build_fms_network(reduced_hyperperiod=False)
)
