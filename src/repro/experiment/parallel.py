"""Parallel sweep front-end: grouping, fallback rules, one-shot wrapper.

:func:`repro.experiment.sweep.run_sweep` with ``workers > 1`` lands here.
The matrix's cells are partitioned by
:meth:`~repro.experiment.scenario.Scenario.schedule_key` — the unit of
stage reuse — and each group is dispatched as one unit to worker
processes, so a group still pays exactly one task-graph derivation and
one scheduling pass no matter how many runtime-only cells (jitter seeds,
overheads, frame counts, stimuli) it contains.

The execution engine itself lives in :mod:`repro.experiment.pool`: a
resident :class:`~repro.experiment.pool.SweepPool` service that keeps
spawned workers (and their warm per-schedule-key caches) alive across
submissions.  :func:`run_sweep_parallel` is a thin one-shot wrapper — it
opens a transient pool for a single submission and closes it again — so
the classic ``run_sweep(workers=N)`` call keeps its exact PR 5/6
behaviour while sharing one implementation with the service:

* everything crossing the process boundary is *data* in the tagged JSON
  wire format of :mod:`repro.io.json_io` (Fractions, complex samples and
  tuples stay exact), and every cell executes through the shared
  :func:`repro.experiment.sweep._run_cell` helper, which makes parallel
  rows **bit-identical** to a serial ``run_sweep`` of the same matrix —
  pinned by the test suite;
* a cell that raises inside a worker becomes an error row while the rest
  of its group still runs; a worker that *dies* is respawned and its
  group redispatched with exponential backoff up to ``max_retries``
  budget-charged attempts; with ``group_timeout`` set, a group missing
  its deadline is terminated and retried the same way;
  ``KeyboardInterrupt`` drains completed replies, reaps every worker and
  returns the partial result with ``stats.interrupted`` set;
* checkpoint-store hits are resolved parent-side before dispatch and
  computed rows persisted as replies merge, so workers stay store-free
  (a store never forces a serial fallback).

Not every sweep can be dispatched.  :func:`serial_fallback_reason`
documents the rules: sweeps attaching live per-cell observers
(``observer_factory``) or retaining full results (``keep_results``) need
in-process objects; scenarios embedding code the child cannot
reconstruct (bare factory callables, per-job WCET callables, workload
names registered — or overridden — only in the parent process, which a
freshly-imported worker would not resolve) are refused per cell; a
caller-shared cache cannot be shared across processes; and a single
schedule-key group has nothing to fan out.  ``run_sweep`` records the
reason in ``SweepStats.parallel_fallback`` and runs serially.

Spawn's usual rule applies: a *script* calling ``run_sweep(workers=N)``
at import time must guard the call with ``if __name__ == "__main__":``
(the children re-import the main module), exactly as with any direct
:mod:`multiprocessing` use.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ModelError
from ..runtime.observers import ExecutionObserver
from .experiment import PipelineCache
from .faults import FaultPlan
from .store import SweepStore
from .sweep import (
    ScenarioMatrix,
    SweepCell,
    SweepResult,
)

__all__ = [
    "run_sweep_parallel",
    "schedule_key_groups",
    "serial_fallback_reason",
]


def _group_cells(cells: Sequence[SweepCell]) -> List[List[SweepCell]]:
    groups: Dict[Any, List[SweepCell]] = {}
    for cell in cells:
        groups.setdefault(cell.scenario.schedule_key(), []).append(cell)
    return list(groups.values())


def schedule_key_groups(matrix: ScenarioMatrix) -> List[List[SweepCell]]:
    """The matrix's cells grouped by schedule key, in first-seen order.

    One group is the unit of dispatch *and* of stage reuse: all its cells
    share one derivation and one schedule, so a worker owning the whole
    group pays each exactly once from its private cache.
    """
    return _group_cells(list(matrix.cells()))


def _serial_fallback_reason(
    cells: Sequence[SweepCell],
    *,
    keep_results: bool = False,
    observer_factory: Optional[
        Callable[[SweepCell], Sequence[ExecutionObserver]]
    ] = None,
    cache: Optional[PipelineCache] = None,
) -> Optional[str]:
    if observer_factory is not None:
        return (
            "observer_factory attaches live in-process observers, which "
            "cannot be shipped to worker processes"
        )
    if keep_results:
        return (
            "keep_results retains full RuntimeResult objects, which are "
            "not serialised across the process boundary"
        )
    if cache is not None:
        return (
            "a caller-shared PipelineCache cannot be shared with worker "
            "processes — drop it to fan out"
        )
    # The *cells* are what gets dispatched, so they are the authority —
    # the base scenario may carry code an axis substitutes away (a
    # workload axis over registered names), or vice versa.
    for cell in cells:
        blocker = cell.scenario.dispatch_blocker()
        if blocker is not None:
            return f"scenario is not dispatchable: {blocker}"
    if len(_group_cells(cells)) < 2:
        return (
            "matrix has a single schedule-key group — nothing to fan out "
            "(parallelism is per distinct schedule key)"
        )
    return None


def serial_fallback_reason(
    matrix: ScenarioMatrix,
    *,
    keep_results: bool = False,
    observer_factory: Optional[
        Callable[[SweepCell], Sequence[ExecutionObserver]]
    ] = None,
    cache: Optional[PipelineCache] = None,
) -> Optional[str]:
    """Why this sweep must run serially, or ``None`` if it can fan out.

    The returned string is stored verbatim in
    ``SweepStats.parallel_fallback`` so a ``workers > 1`` caller can see
    which rule demoted the sweep.
    """
    return _serial_fallback_reason(
        list(matrix.cells()),
        keep_results=keep_results,
        observer_factory=observer_factory,
        cache=cache,
    )


def run_sweep_parallel(
    matrix: ScenarioMatrix,
    metrics: Tuple[str, ...],
    want_data: bool,
    *,
    lean: bool,
    workers: int,
    cells: Optional[Sequence[SweepCell]] = None,
    store: Optional[SweepStore] = None,
    faults: Optional[FaultPlan] = None,
    on_error: str = "capture",
    group_timeout: Optional[float] = None,
    max_retries: int = 2,
    retry_backoff: float = 0.25,
    on_row: Optional[Callable[[Any], None]] = None,
    on_progress: Optional[Callable[[Any], None]] = None,
) -> SweepResult:
    """Fan the matrix's schedule-key groups out across worker processes.

    ``run_sweep`` calls this only after :func:`serial_fallback_reason`
    returned ``None`` (passing the cells it already enumerated); callers
    should go through ``run_sweep(workers=N)`` rather than here.  The
    sweep runs on a transient :class:`~repro.experiment.pool.SweepPool`
    that lives exactly as long as this one submission — callers serving
    repeated sweep traffic should hold a ``SweepPool`` open instead and
    keep its workers (and their warm caches) across submissions.
    """
    # pool.py imports this module for the grouping helpers, so the pool
    # itself must be imported lazily here.
    from .pool import SweepPool

    if workers < 2:
        raise ModelError("run_sweep_parallel needs workers >= 2")
    with SweepPool(
        workers=workers,
        group_timeout=group_timeout,
        max_retries=max_retries,
        retry_backoff=retry_backoff,
    ) as pool:
        ticket = pool.submit(
            matrix, metrics,
            lean=lean, cells=cells, store=store, faults=faults,
            on_error=on_error, on_row=on_row, on_progress=on_progress,
        )
        return ticket.result()
