"""``python -m repro`` — run scenarios and sweeps from JSON configs.

The operational surface over the experiment layer, STOMP-style (the
related toolchain drives everything through one JSON-configurable entry
point).  Three subcommands:

``run <config.json>``
    Execute one scenario and print its metrics table as an
    ``fppn-sweep`` JSON document (a one-row sweep, so ``run`` output and
    ``sweep`` output diff uniformly).  ``--spans <path>`` additionally
    exports the run as an OTel-style span list
    (:class:`repro.runtime.telemetry.SpanObserver`).

``sweep <config.json>``
    Execute a scenario matrix and print the ``SweepResult`` JSON.
    ``--workers`` fans out across worker processes, ``--store`` attaches
    a durable SQLite checkpoint (resumable sweeps), ``--group-timeout``
    / ``--max-retries`` / ``--on-error`` map onto the fault-tolerance
    knobs of :func:`repro.experiment.run_sweep`, and ``--progress``
    renders live per-cell/per-group progress on stderr
    (:class:`repro.runtime.telemetry.ProgressObserver`).

``diff <a.json> <b.json>``
    Compare two result files (sweep tables or ``BENCH_*.json``
    snapshots) through :mod:`repro.analysis.compare` and exit nonzero
    past ``--tolerance`` — the CI perf-gate primitive.  Exit codes:
    0 within tolerance, 1 regression, 2 not comparable.

Config files are either a bare artifact — an ``fppn-scenario`` document
(``run``) or an ``fppn-matrix`` document (``sweep``) — or an
``fppn-config`` wrapper naming one of those plus run options::

    {
      "format": "fppn-config",
      "version": 1,
      "scenario": { ... fppn-scenario ... },   // or "matrix": {...}
      "metrics": ["executed_jobs", "makespan"],
      "faults": {"raise_at": [1]}              // optional, for drills
    }

Results go to stdout (or ``-o``); progress and diagnostics go to
stderr, so ``python -m repro run cfg.json | jq .`` just works.
Workloads must be registered names (the built-in apps register
``fig1`` / ``fft`` / ``fms`` / ``fms-40s`` on import) — scenarios
carrying bare code cannot come from JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Mapping, NoReturn, Optional, Sequence

from .errors import FPPNError

#: Ensures the built-in workload names resolve for scenarios loaded
#: from JSON before any run starts.
from . import apps as _apps  # noqa: F401

__all__ = ["main"]


def _fail(message: str) -> NoReturn:
    print(f"error: {message}", file=sys.stderr)
    raise SystemExit(2)


def _load_json(path: str) -> Any:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except OSError as exc:
        _fail(f"cannot read {path}: {exc}")
    except json.JSONDecodeError as exc:
        _fail(f"{path} is not valid JSON: {exc}")


def _parse_config(data: Any, path: str) -> Dict[str, Any]:
    """Normalise any accepted config shape to the fppn-config fields."""
    from .io.json_io import (
        FormatError,
        fault_plan_from_dict,
        matrix_from_dict,
        scenario_from_dict,
    )

    if not isinstance(data, Mapping):
        _fail(f"{path}: expected a JSON object, got {type(data).__name__}")
    fmt = data.get("format")
    try:
        if fmt == "fppn-scenario":
            return {"scenario": scenario_from_dict(data)}
        if fmt == "fppn-matrix":
            return {"matrix": matrix_from_dict(data)}
        if fmt == "fppn-config":
            out: Dict[str, Any] = {}
            if "scenario" in data:
                out["scenario"] = scenario_from_dict(data["scenario"])
            if "matrix" in data:
                out["matrix"] = matrix_from_dict(data["matrix"])
            if not out:
                _fail(f"{path}: fppn-config needs a 'scenario' or 'matrix'")
            if "metrics" in data:
                metrics = data["metrics"]
                if not isinstance(metrics, Sequence) or isinstance(
                    metrics, str
                ):
                    _fail(f"{path}: 'metrics' must be a list of names")
                out["metrics"] = tuple(metrics)
            if "faults" in data:
                out["faults"] = fault_plan_from_dict(data["faults"])
            return out
    except FormatError as exc:
        _fail(f"{path}: {exc}")
    except FPPNError as exc:
        _fail(f"{path}: {exc}")
    _fail(
        f"{path}: unrecognised config format {fmt!r} — expected "
        "fppn-config, fppn-scenario or fppn-matrix"
    )


def _emit(document: Mapping[str, Any], output: Optional[str]) -> None:
    text = json.dumps(document, indent=2, sort_keys=True) + "\n"
    if output is None or output == "-":
        sys.stdout.write(text)
    else:
        with open(output, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {output}", file=sys.stderr)


def _progress_sinks(enabled: bool, total_cells: int, label: str):
    if not enabled:
        return None, None, None
    from .runtime.telemetry import ProgressObserver

    observer = ProgressObserver(total_cells=total_cells, label=label)
    return observer, observer.on_row, observer.on_event


def _cmd_run(args: argparse.Namespace) -> int:
    from .experiment import DEFAULT_METRICS, ScenarioMatrix, run_sweep
    from .io.json_io import save_json, spans_to_jsonable, sweep_result_to_dict

    config = _parse_config(_load_json(args.config), args.config)
    scenario = config.get("scenario")
    if scenario is None:
        _fail(
            f"{args.config}: 'run' needs a scenario config — use "
            "'sweep' for matrix configs"
        )
    metrics = config.get("metrics", DEFAULT_METRICS)
    matrix = ScenarioMatrix(scenario, {})

    span_observer = None
    observer_factory = None
    if args.spans is not None:
        from .runtime.telemetry import SpanObserver

        span_observer = SpanObserver()
        # One cell, one live run: the factory forces the serial path and
        # a live (non-store, non-lean-skipped) execution, which is what
        # span collection needs anyway.
        observer_factory = lambda cell: [span_observer]  # noqa: E731
    progress, on_row, on_progress = _progress_sinks(
        args.progress, len(matrix), "run"
    )

    try:
        result = run_sweep(
            matrix, metrics,
            observer_factory=observer_factory,
            on_error="raise",
            on_row=on_row, on_progress=on_progress,
        )
    except FPPNError as exc:
        _fail(str(exc))
    except Exception as exc:  # the scenario's own code may raise anything
        print(f"run failed: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    if progress is not None:
        progress.finish(result.stats)
    if span_observer is not None:
        save_json(spans_to_jsonable(span_observer.spans), args.spans)
        print(
            f"wrote {len(span_observer.spans)} span(s) to {args.spans}",
            file=sys.stderr,
        )
    _emit(sweep_result_to_dict(result), args.output)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .experiment import (
        DEFAULT_METRICS,
        ScenarioMatrix,
        SqliteSweepStore,
        run_sweep,
    )
    from .io.json_io import sweep_result_to_dict

    config = _parse_config(_load_json(args.config), args.config)
    matrix = config.get("matrix")
    if matrix is None:
        # A scenario-only config sweeps as a single-cell matrix, so one
        # config file can serve both subcommands.
        matrix = ScenarioMatrix(config["scenario"], {})
    metrics = config.get("metrics", DEFAULT_METRICS)
    store = SqliteSweepStore(args.store) if args.store is not None else None
    progress, on_row, on_progress = _progress_sinks(
        args.progress, len(matrix), "sweep"
    )

    try:
        result = run_sweep(
            matrix, metrics,
            workers=args.workers,
            store=store,
            faults=config.get("faults"),
            on_error=args.on_error,
            group_timeout=args.group_timeout,
            max_retries=args.max_retries,
            on_row=on_row, on_progress=on_progress,
        )
    except FPPNError as exc:
        _fail(str(exc))
    except Exception as exc:
        print(f"sweep failed: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    if progress is not None:
        progress.finish(result.stats)
    _emit(sweep_result_to_dict(result), args.output)
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from .analysis.compare import compare_files

    comparison = compare_files(args.a, args.b, tolerance=args.tolerance)
    for warning in comparison.warnings:
        print(warning, file=sys.stderr)
    if comparison.refusal is not None:
        print(comparison.refusal, file=sys.stderr)
        return comparison.exit_code
    for line in comparison.lines:
        print(line)
    if comparison.regressions:
        print(
            f"\n{len(comparison.regressions)} regression(s) past "
            f"tolerance {args.tolerance:.0%}:",
            file=sys.stderr,
        )
        for line in comparison.regressions:
            print(f"  ! {line}", file=sys.stderr)
    return comparison.exit_code


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=__doc__.splitlines()[0],
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="execute one scenario from a JSON config"
    )
    run.add_argument("config", help="fppn-scenario or fppn-config JSON file")
    run.add_argument(
        "-o", "--output", default=None,
        help="write the result JSON here instead of stdout",
    )
    run.add_argument(
        "--spans", default=None, metavar="PATH",
        help="also export the run as an OTel-style JSON span list",
    )
    run.add_argument(
        "--progress", action="store_true",
        help="render live progress on stderr",
    )
    run.set_defaults(func=_cmd_run)

    sweep = sub.add_parser(
        "sweep", help="execute a scenario matrix from a JSON config"
    )
    sweep.add_argument("config", help="fppn-matrix or fppn-config JSON file")
    sweep.add_argument(
        "-o", "--output", default=None,
        help="write the SweepResult JSON here instead of stdout",
    )
    sweep.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = serial in-process, the default)",
    )
    sweep.add_argument(
        "--store", default=None, metavar="PATH",
        help="SQLite checkpoint store — completed cells survive reruns",
    )
    sweep.add_argument(
        "--group-timeout", type=float, default=None, metavar="SECONDS",
        help="per-group deadline for the parallel supervisor",
    )
    sweep.add_argument(
        "--max-retries", type=int, default=2,
        help="group redispatches after worker crash/timeout (default 2)",
    )
    sweep.add_argument(
        "--on-error", choices=("capture", "raise"), default="capture",
        help="failing cells become error rows (capture, default) or "
             "abort the sweep (raise)",
    )
    sweep.add_argument(
        "--progress", action="store_true",
        help="render live per-cell/per-group progress on stderr",
    )
    sweep.set_defaults(func=_cmd_sweep)

    diff = sub.add_parser(
        "diff", help="compare two result files (sweep tables or "
                     "BENCH_*.json snapshots)"
    )
    diff.add_argument("a", help="baseline result file")
    diff.add_argument("b", help="candidate result file")
    diff.add_argument(
        "--tolerance", type=float, default=0.0, metavar="FRACTION",
        help="relative drift allowed before exit 1 (default 0.0 — exact)",
    )
    diff.set_defaults(func=_cmd_diff)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
