"""Exception hierarchy for the FPPN library.

Every error raised by :mod:`repro` derives from :class:`FPPNError` so callers
can catch library failures with a single ``except`` clause while still being
able to discriminate the failure class.
"""

from __future__ import annotations


class FPPNError(Exception):
    """Base class of all errors raised by the repro library."""


class ModelError(FPPNError):
    """An FPPN network definition violates the model's well-formedness rules.

    Examples: a cyclic functional-priority relation, a channel whose
    writer/reader pair is not ordered by functional priority, duplicate
    process names, or a sporadic process without a valid user process.
    """


class ChannelError(FPPNError):
    """Illegal channel access (unknown channel, wrong endpoint, type error)."""


class EventError(FPPNError):
    """An event-generator definition or arrival trace is invalid.

    Raised, for instance, when a sporadic arrival trace violates the
    "at most m events in any half-open window of length T" constraint.
    """


class SemanticsError(FPPNError):
    """Execution of the model semantics failed (e.g. non-returning automaton)."""


class SchedulingError(FPPNError):
    """The scheduler could not produce a schedule or was misconfigured."""


class InfeasibleError(SchedulingError):
    """No feasible schedule exists (or was found) for the requested platform.

    Attributes
    ----------
    diagnostics:
        Optional human-readable details, e.g. which job missed its deadline
        in the best candidate schedule, or the load bound that was violated.
    """

    def __init__(self, message: str, diagnostics: str = "") -> None:
        super().__init__(message)
        self.diagnostics = diagnostics


class RuntimeModelError(FPPNError):
    """The online policy / runtime simulator was driven with invalid input."""
