# Developer entry points.  PYTHONPATH is injected so no install is needed.

PY := PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) python

.PHONY: test test-faults test-pool test-hetero bench bench-smoke bench-json bench-diff cov lint cli-smoke service-smoke

# Tier-1 verification: the full unit/integration suite plus benchmarks-as-tests.
test:
	$(PY) -m pytest -x -q

# Fault-tolerance lane: deterministic fault injection (kernel raises,
# worker kills, timeouts, interrupts) plus the checkpoint-store resume
# suite.  Spawns real worker processes; also part of the tier-1 run.
test-faults:
	$(PY) -m pytest tests/test_sweep_faults.py tests/test_sweep_store.py -q

# Resident sweep-service lane: warm-cache resubmits, streaming rows,
# submission queue/cancel and pool lifecycle (orphans, crash respawn).
# Spawns real worker processes; also part of the tier-1 run.
test-pool:
	$(PY) -m pytest tests/test_sweep_pool.py -q

# Heterogeneous-platform lane: the degenerate-platform bit-identity
# contract against the Fraction oracles, exact speed scaling, platform
# sweep axes, and the pre-platform JSON back-compat fixtures.  Also part
# of the tier-1 run.
test-hetero:
	$(PY) -m pytest tests/test_hetero_equivalence.py tests/test_io_json.py -q

# Error-level lint (ruff.toml: syntax errors / undefined names only).
# Skips gracefully when ruff is not in the environment; CI installs it.
lint:
	@if $(PY) -c "import ruff" 2>/dev/null; then \
		$(PY) -m ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed — skipping lint (pip install ruff)"; \
	fi

# Line coverage of the runtime package (the executor hot paths this repo
# keeps optimising), the experiment layer (the public scenario API,
# including experiment.store / experiment.faults / experiment.parallel —
# the fault-tolerance surface) and the scheduling package (the
# platform-aware list scheduler / search / optimizer paths) with a hard
# floor.  Skips gracefully when pytest-cov is not in the environment; CI
# installs it.
cov:
	@if $(PY) -c "import pytest_cov" 2>/dev/null; then \
		$(PY) -m pytest tests -q \
			--cov=repro.runtime --cov=repro.experiment \
			--cov=repro.scheduling \
			--cov-report=term-missing --cov-fail-under=85; \
	else \
		echo "pytest-cov not installed — skipping coverage (pip install pytest-cov)"; \
	fi

# The paper-experiment benchmark suite with pytest-benchmark timing tables.
bench:
	$(PY) -m pytest benchmarks -q -m experiment

# CI smoke lane: run every experiment benchmark in fast mode (timing
# disabled, assertions on) plus the perf-trajectory runner in --fast mode,
# so the hot tick-domain paths stay continuously exercised and any error
# fails the lane.  The runner's fms_sweep_2x3_workers2 case spawns real
# worker processes (run_sweep(workers=2)), so the multiprocess sweep
# backend is exercised on every push alongside tests/test_sweep_parallel.py.
bench-smoke:
	$(PY) -m pytest benchmarks -q -m experiment --benchmark-disable
	$(PY) benchmarks/run_bench.py --fast

# Write a BENCH_<date>.json perf-trajectory snapshot (commit it in perf PRs).
bench-json:
	$(PY) benchmarks/run_bench.py --label $(or $(LABEL),dev)

# Compare two snapshots: make bench-diff A=benchmarks/BENCH_a.json B=...
# Refuses snapshots from hosts with different cpu counts — the
# parallel/pool lanes are not comparable across core counts.  Add
# TOLERANCE=0.05 to turn the report into a gate (exit 1 past 5%).
bench-diff:
	$(PY) benchmarks/run_bench.py --diff $(A) $(B) \
		$(if $(TOLERANCE),--tolerance $(TOLERANCE))

# Operational-surface smoke: drive the shipped demo configs through the
# `python -m repro` CLI (run + spans, parallel sweep + sqlite resume),
# then gate the sweep against itself with `diff` — a zero-drift check of
# the whole config -> execute -> serialise -> compare loop.
cli-smoke:
	@rm -rf build/cli-smoke && mkdir -p build/cli-smoke
	$(PY) -m repro run examples/fig1_run.json \
		-o build/cli-smoke/run.json --spans build/cli-smoke/spans.json \
		--progress
	$(PY) -m repro sweep examples/fig1_sweep.json --workers 2 \
		--store build/cli-smoke/sweep.db -o build/cli-smoke/sweep_a.json \
		--progress
	$(PY) -m repro sweep examples/fig1_sweep.json \
		--store build/cli-smoke/sweep.db -o build/cli-smoke/sweep_b.json
	$(PY) -m repro diff build/cli-smoke/sweep_a.json \
		build/cli-smoke/sweep_b.json

# Served-sweep smoke: start a real `python -m repro serve` process on an
# ephemeral port, route the demo sweep to it with `sweep --server`, run
# the same config in-process, and gate remote vs local with `diff` at
# zero tolerance — served rows must be bit-identical to local ones.
service-smoke:
	@rm -rf build/service-smoke && mkdir -p build/service-smoke
	@set -e; \
	$(PY) -m repro serve examples/sweep_server.json \
		--ready-file build/service-smoke/addr \
		> build/service-smoke/server.log 2>&1 < /dev/null & \
	server_pid=$$!; \
	trap 'kill $$server_pid 2>/dev/null || true; wait $$server_pid 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 100); do \
		[ -s build/service-smoke/addr ] && break; \
		kill -0 $$server_pid 2>/dev/null || { \
			cat build/service-smoke/server.log; exit 1; }; \
		sleep 0.1; \
	done; \
	[ -s build/service-smoke/addr ] || { \
		echo "server never became ready"; \
		cat build/service-smoke/server.log; exit 1; }; \
	$(PY) -m repro sweep examples/fig1_sweep.json \
		--server "$$(cat build/service-smoke/addr)" --progress \
		-o build/service-smoke/remote.json; \
	$(PY) -m repro sweep examples/fig1_sweep.json \
		-o build/service-smoke/local.json; \
	$(PY) -m repro diff build/service-smoke/local.json \
		build/service-smoke/remote.json --tolerance 0.0
