"""The FPPN network definition (Definition 2.1) and its builder API.

An FPPN is the tuple ``PN = (P, C, FP, ep, Ie, Oe, de, Σc, CTc)``:

* ``P`` — processes, each one-to-one with an event generator ``ep``;
* ``C ⊆ P × P`` — internal channels, so ``(P, C)`` is a directed graph that
  **may be cyclic** (feedback loops are legal);
* ``FP ⊂ P × P`` — the *functional priority* relation, which **must be a
  DAG** and must order at least every pair of processes sharing a channel:
  ``(p1, p2) ∈ C ⇒ p1 → p2 ∨ p2 → p1``;
* ``Ie``/``Oe``/``de`` — external I/O channels and deadline per generator;
* ``Σc``/``CTc`` — channel alphabets and channel types.

:class:`Network` is the single authoring entry point of the library::

    net = Network("example")
    net.add_periodic("Input", period=200, kernel=read_sensor)
    net.add_periodic("Filter", period=100, kernel=filter_kernel)
    net.connect("Input", "Filter", "c", kind=ChannelKind.FIFO)
    net.add_priority("Input", "Filter")
    net.validate()

Validation enforces the structural well-formedness rules above; the
*task-graph subclass* restrictions of Section III-A (each sporadic process
has exactly one periodic user with ``T_u(p) <= T_p``) are checked separately
by :meth:`Network.user_of` / :meth:`Network.validate_taskgraph_subclass`
because plain zero-delay execution does not need them.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import ChannelError, ModelError
from .channels import (
    ChannelKind,
    ChannelSpec,
    ExternalInputSpec,
    ExternalOutputSpec,
    NO_DATA,
)
from .events import EventGenerator, PeriodicGenerator, SporadicGenerator
from .process import Behavior, JobContext, KernelBehavior, Process
from .timebase import TimeLike


def kahn_name_order(
    names: Sequence[str],
    edges: Iterable[Tuple[str, str]],
    cycle_message: str,
) -> List[str]:
    """Deterministic topological order of a name DAG (ties by name).

    Kahn's algorithm with a min-heap of names: the lexicographically
    smallest available name is always emitted next.  Shared by the FP order
    of :class:`Network` and the FP' order of
    :class:`repro.taskgraph.servers.TransformedNetwork`.  Raises
    :class:`ModelError` (``cycle_message`` formatted with the offending
    names) when the edge relation is cyclic.
    """
    names = sorted(names)
    indeg = {n: 0 for n in names}
    succs: Dict[str, List[str]] = {n: [] for n in names}
    for hi, lo in edges:
        succs[hi].append(lo)
        indeg[lo] += 1
    ready = [n for n in names if indeg[n] == 0]
    heapq.heapify(ready)
    order: List[str] = []
    while ready:
        n = heapq.heappop(ready)
        order.append(n)
        for m in succs[n]:
            indeg[m] -= 1
            if indeg[m] == 0:
                heapq.heappush(ready, m)
    if len(order) != len(names):
        cyclic = sorted(set(names) - set(order))
        raise ModelError(cycle_message.format(cyclic=repr(cyclic)))
    return order


class Network:
    """Mutable FPPN definition with validation.

    The network is a pure *definition*: executing it (zero-delay semantics,
    runtime simulation) never mutates it, so one definition can back many
    executions.
    """

    def __init__(self, name: str = "fppn") -> None:
        self.name = name
        self.processes: Dict[str, Process] = {}
        self.channels: Dict[str, ChannelSpec] = {}
        #: functional priority edges, higher -> lower
        self.priorities: Set[Tuple[str, str]] = set()
        self.external_inputs: Dict[str, ExternalInputSpec] = {}
        self.external_outputs: Dict[str, ExternalOutputSpec] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_process(self, process: Process) -> Process:
        """Register a fully constructed :class:`Process`."""
        if process.name in self.processes:
            raise ModelError(f"duplicate process name {process.name!r}")
        self.processes[process.name] = process
        return process

    def add_periodic(
        self,
        name: str,
        period: TimeLike,
        kernel: Optional[Callable[[JobContext], None]] = None,
        deadline: Optional[TimeLike] = None,
        burst: int = 1,
        offset: TimeLike = 0,
        behavior: Optional[Behavior] = None,
        initial: Optional[Dict[str, Any]] = None,
    ) -> Process:
        """Add a (multi-)periodic process from a kernel callable or behavior."""
        gen = PeriodicGenerator(period, deadline, burst, offset)
        return self.add_process(
            Process(name, gen, _resolve_behavior(kernel, behavior, initial))
        )

    def add_sporadic(
        self,
        name: str,
        min_period: TimeLike,
        deadline: Optional[TimeLike] = None,
        kernel: Optional[Callable[[JobContext], None]] = None,
        burst: int = 1,
        behavior: Optional[Behavior] = None,
        initial: Optional[Dict[str, Any]] = None,
    ) -> Process:
        """Add a sporadic process (at most *burst* events per *min_period*)."""
        if deadline is None:
            deadline = min_period
        gen = SporadicGenerator(min_period, deadline, burst)
        return self.add_process(
            Process(name, gen, _resolve_behavior(kernel, behavior, initial))
        )

    def connect(
        self,
        writer: str,
        reader: str,
        name: Optional[str] = None,
        kind: ChannelKind = ChannelKind.FIFO,
        alphabet: Optional[Callable[[Any], bool]] = None,
        initial: Any = NO_DATA,
    ) -> ChannelSpec:
        """Create an internal channel from *writer* to *reader*.

        The default channel name is ``"writer->reader"``; an explicit name is
        required when two processes share more than one channel.
        """
        self._require_process(writer)
        self._require_process(reader)
        if name is None:
            name = f"{writer}->{reader}"
        if name in self.channels:
            raise ChannelError(f"duplicate channel name {name!r}")
        spec = ChannelSpec(name, kind, writer, reader, alphabet, initial)
        self.channels[name] = spec
        self.processes[writer].outputs.append(name)
        self.processes[reader].inputs.append(name)
        return spec

    def add_priority(self, higher: str, lower: str) -> None:
        """Declare the functional priority edge ``higher → lower``.

        Note (Section II-A): functional priority is *not* a scheduling
        priority — it defines the order of simultaneously invoked jobs in
        the model semantics.
        """
        self._require_process(higher)
        self._require_process(lower)
        if higher == lower:
            raise ModelError(f"process {higher!r} cannot have priority over itself")
        self.priorities.add((higher, lower))

    def add_priority_chain(self, *names: str) -> None:
        """Convenience: ``add_priority`` along a chain ``a → b → c → ...``."""
        for hi, lo in zip(names, names[1:]):
            self.add_priority(hi, lo)

    def add_external_input(self, process: str, name: str) -> ExternalInputSpec:
        """Attach an external input channel to *process*'s event generator."""
        self._require_process(process)
        if name in self.external_inputs or name in self.external_outputs:
            raise ChannelError(f"duplicate external channel name {name!r}")
        spec = ExternalInputSpec(name, process)
        self.external_inputs[name] = spec
        self.processes[process].external_inputs.append(name)
        return spec

    def add_external_output(self, process: str, name: str) -> ExternalOutputSpec:
        """Attach an external output channel to *process*'s event generator."""
        self._require_process(process)
        if name in self.external_inputs or name in self.external_outputs:
            raise ChannelError(f"duplicate external channel name {name!r}")
        spec = ExternalOutputSpec(name, process)
        self.external_outputs[name] = spec
        self.processes[process].external_outputs.append(name)
        return spec

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def process_names(self) -> List[str]:
        """All process names, in insertion order."""
        return list(self.processes)

    def channels_between(self, p1: str, p2: str) -> List[ChannelSpec]:
        """All channels whose endpoint set is ``{p1, p2}`` (either direction)."""
        pair = {p1, p2}
        return [c for c in self.channels.values() if set(c.endpoints) == pair]

    def fp_related(self, p1: str, p2: str) -> bool:
        """``p1 ⋈ p2`` — directly ordered by functional priority (Sec. III-A)."""
        return (p1, p2) in self.priorities or (p2, p1) in self.priorities

    def higher_priority(self, p1: str, p2: str) -> bool:
        """True iff the *direct* edge ``p1 → p2`` exists."""
        return (p1, p2) in self.priorities

    def sporadic_processes(self) -> List[Process]:
        return [p for p in self.processes.values() if p.is_sporadic]

    def periodic_processes(self) -> List[Process]:
        return [p for p in self.processes.values() if not p.is_sporadic]

    def user_of(self, sporadic: str) -> Process:
        """The unique periodic *user* ``u(p)`` of a sporadic process.

        Section III-A requires, for the schedulable subclass, that each
        sporadic process is connected by a channel to exactly one user
        process, which must be periodic and have at most the sporadic's
        period: ``T_u(p) <= T_p``.
        """
        p = self._require_process(sporadic)
        if not p.is_sporadic:
            raise ModelError(f"process {sporadic!r} is not sporadic")
        partners = set()
        for c in self.channels.values():
            if c.writer == sporadic:
                partners.add(c.reader)
            elif c.reader == sporadic:
                partners.add(c.writer)
        if len(partners) != 1:
            raise ModelError(
                f"sporadic process {sporadic!r} must be connected to exactly "
                f"one user process, found {sorted(partners)!r}"
            )
        user = self.processes[next(iter(partners))]
        if user.is_sporadic:
            raise ModelError(
                f"user {user.name!r} of sporadic process {sporadic!r} must be "
                "periodic"
            )
        if user.period > p.period:
            raise ModelError(
                f"user {user.name!r} of sporadic {sporadic!r} must satisfy "
                f"T_u <= T_p (got T_u={user.period} > T_p={p.period})"
            )
        return user

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the structural rules of Definition 2.1.

        * at least one process;
        * the functional-priority graph is acyclic;
        * every channel's writer/reader pair is FP-ordered;
        * channel endpoints exist (guaranteed by construction but re-checked
          for networks assembled by hand).
        """
        if not self.processes:
            raise ModelError("network has no processes")
        for c in self.channels.values():
            for endpoint in c.endpoints:
                if endpoint not in self.processes:
                    raise ModelError(
                        f"channel {c.name!r} endpoint {endpoint!r} is not a process"
                    )
            if not self.fp_related(c.writer, c.reader):
                raise ModelError(
                    f"processes {c.writer!r} and {c.reader!r} share channel "
                    f"{c.name!r} but are not ordered by functional priority "
                    "(Definition 2.1 requires p1 -> p2 or p2 -> p1)"
                )
        for hi, lo in self.priorities:
            if hi not in self.processes or lo not in self.processes:
                raise ModelError(f"priority edge ({hi!r}, {lo!r}) references unknown process")
        self.priority_order()  # raises on cycles

    def validate_taskgraph_subclass(self) -> None:
        """Additionally check the Section III-A schedulable-subclass rules."""
        self.validate()
        for p in self.sporadic_processes():
            self.user_of(p.name)

    def priority_order(self) -> List[str]:
        """Topological order of the functional-priority DAG.

        Processes not related by FP are ordered by name, making the result
        deterministic (the choice cannot affect channel data, because
        FP covers all channel-sharing pairs).  Raises :class:`ModelError`
        on a priority cycle.
        """
        return kahn_name_order(
            list(self.processes),
            self.priorities,
            "functional priority graph has a cycle involving {cyclic}",
        )

    def priority_rank(self) -> Dict[str, int]:
        """Map process name -> rank in :meth:`priority_order` (0 = highest)."""
        return {n: i for i, n in enumerate(self.priority_order())}

    # ------------------------------------------------------------------
    def _require_process(self, name: str) -> Process:
        proc = self.processes.get(name)
        if proc is None:
            raise ModelError(f"unknown process {name!r}")
        return proc

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"Network({self.name!r}, processes={len(self.processes)}, "
            f"channels={len(self.channels)}, priorities={len(self.priorities)})"
        )


def _resolve_behavior(
    kernel: Optional[Callable[[JobContext], None]],
    behavior: Optional[Behavior],
    initial: Optional[Dict[str, Any]],
) -> Behavior:
    if behavior is not None and kernel is not None:
        raise ModelError("give either a kernel or a behavior, not both")
    if behavior is not None:
        if initial is not None:
            raise ModelError("initial variables belong to the behavior object")
        return behavior
    if kernel is None:
        # A process with no kernel is a pure no-op (useful in scheduling-only
        # models where data semantics is irrelevant).
        return KernelBehavior(lambda ctx: None, initial)
    return KernelBehavior(kernel, initial)
