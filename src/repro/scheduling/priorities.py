"""Schedule-priority (SP) heuristics for list scheduling.

Section III-B: list scheduling assumes a heuristically computed *schedule
priority* ``SP`` — a total order on jobs where earlier jobs have higher
priority.  ``SP`` must not be confused with the functional priority ``FP``;
FP determines the precedence edges, SP only drives the list scheduler's
tie-breaking.

Implemented heuristics (the families the paper cites):

* ``alap`` — EDF adjusted for task graphs by using ALAP completion times
  ``D'_i`` instead of nominal deadlines (the paper's recommended variant).
* ``deadline`` — EDF on the nominal deadlines ``Di`` (the "modified
  deadline monotonic" flavour of [Forget et al.]).
* ``blevel`` — longest WCET-weighted path to any sink, descending
  (the classic b-level heuristic of [Kwok & Ahmad]).
* ``arrival`` — FIFO by arrival time (baseline; what a naive implementation
  would do).

Every heuristic returns a *rank list*: ``rank[i]`` is the position of job
``i`` in the SP total order (0 = highest priority).  All orders are made
total deterministically by final tie-breaks on the ``<J`` index.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from ..errors import SchedulingError
from ..core.timebase import Time
from ..taskgraph.asap_alap import TimingBounds, compute_bounds
from ..taskgraph.graph import TaskGraph

Heuristic = Callable[[TaskGraph], List[int]]

_REGISTRY: Dict[str, Heuristic] = {}


def register_heuristic(name: str) -> Callable[[Heuristic], Heuristic]:
    """Decorator registering a named SP heuristic."""

    def deco(fn: Heuristic) -> Heuristic:
        if name in _REGISTRY:
            raise SchedulingError(f"heuristic {name!r} already registered")
        _REGISTRY[name] = fn
        return fn

    return deco


def available_heuristics() -> List[str]:
    """Names of all registered heuristics."""
    return sorted(_REGISTRY)


def get_heuristic(name: str) -> Heuristic:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SchedulingError(
            f"unknown heuristic {name!r}; available: {available_heuristics()}"
        ) from None


def _ranks_from_keys(keys: Sequence) -> List[int]:
    """Convert per-job sort keys into rank positions (0 = highest)."""
    order = sorted(range(len(keys)), key=lambda i: keys[i])
    ranks = [0] * len(keys)
    for pos, i in enumerate(order):
        ranks[i] = pos
    return ranks


@register_heuristic("alap")
def alap_priority(graph: TaskGraph) -> List[int]:
    """EDF on ALAP completion times (ties: ASAP, then ``<J`` index)."""
    bounds = compute_bounds(graph)
    keys = [
        (bounds.alap[i], bounds.asap[i], i) for i in range(len(graph))
    ]
    return _ranks_from_keys(keys)


@register_heuristic("deadline")
def deadline_priority(graph: TaskGraph) -> List[int]:
    """EDF on the nominal job deadlines ``Di`` (ties: arrival, index)."""
    keys = [
        (graph.jobs[i].deadline, graph.jobs[i].arrival, i)
        for i in range(len(graph))
    ]
    return _ranks_from_keys(keys)


@register_heuristic("blevel")
def blevel_priority(graph: TaskGraph) -> List[int]:
    """Descending b-level: longest WCET path from the job to any sink.

    Jobs on long critical paths are urgent even when their deadline is far;
    this is the classical list-scheduling heuristic for makespan.
    """
    n = len(graph)
    blevel: List[Time] = [Time(0)] * n
    for i in range(n - 1, -1, -1):
        tail = Time(0)
        for s in graph.successors(i):
            if blevel[s] > tail:
                tail = blevel[s]
        blevel[i] = graph.jobs[i].wcet + tail
    keys = [(-blevel[i], graph.jobs[i].deadline, i) for i in range(n)]
    return _ranks_from_keys(keys)


@register_heuristic("arrival")
def arrival_priority(graph: TaskGraph) -> List[int]:
    """FIFO by arrival time (baseline heuristic)."""
    keys = [(graph.jobs[i].arrival, graph.jobs[i].deadline, i) for i in range(len(graph))]
    return _ranks_from_keys(keys)
