"""Classical uniprocessor response-time analysis (RTA).

The paper's introduction grounds FPPN in the uniprocessor fixed-priority
tradition ([1], [2], Liu's textbook [9]); this module supplies that
tradition's standard analysis as the analytical counterpart of
:class:`repro.scheduling.uniprocessor.UniprocessorFixedPriority`'s
simulation:

* :func:`utilization_bound` — the Liu & Layland bound ``n(2^(1/n) - 1)``;
* :func:`total_utilization` — ``sum(C_i / T_i)`` over a process set;
* :func:`response_time_analysis` — the exact worst-case response-time
  fixpoint ``R = C_i + sum_{j in hp(i)} ceil(R / T_j) C_j`` for constrained
  deadlines (``d <= T``), treating a sporadic ``(m, T)`` process as ``m``
  copies of a period-``T`` task (its worst-case arrival pattern);
* :func:`rta_schedulable` — deadline check over the whole set.

The test suite cross-validates the analytical response times against the
preemptive simulator on synchronous-release ("critical instant") workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..core.network import Network
from ..core.timebase import Time, TimeLike, as_positive_time
from ..errors import SchedulingError
from ..scheduling.uniprocessor import rate_monotonic_priorities


def utilization_bound(n: int) -> float:
    """Liu & Layland's sufficient RM utilization bound for *n* tasks."""
    if n < 1:
        raise ValueError("need at least one task")
    return n * (2 ** (1.0 / n) - 1)


def total_utilization(
    network: Network, execution_times: Mapping[str, TimeLike]
) -> Time:
    """``sum(m_i * C_i / T_i)`` over all processes (sporadics at max rate)."""
    total = Time(0)
    for name, proc in network.processes.items():
        c = as_positive_time(execution_times[name], f"execution time of {name!r}")
        total += proc.burst * c / proc.period
    return total


@dataclass(frozen=True)
class RtaResult:
    """Worst-case response time of one process under fixed priorities."""

    process: str
    wcrt: Optional[Time]  # None when the fixpoint diverges (overload)
    deadline: Time
    converged: bool

    @property
    def schedulable(self) -> bool:
        return self.converged and self.wcrt is not None and self.wcrt <= self.deadline


def response_time_analysis(
    network: Network,
    execution_times: Mapping[str, TimeLike],
    priorities: Optional[Mapping[str, int]] = None,
    max_iterations: int = 10_000,
) -> Dict[str, RtaResult]:
    """Exact RTA for every process of *network* on one processor.

    Requires constrained deadlines (``d_p <= T_p``) — the standard setting
    in which the synchronous-release busy period is the worst case.  A
    sporadic process with burst ``m`` contributes like ``m`` periodic tasks
    of its minimal period (its densest legal arrival pattern).
    """
    prios = dict(
        priorities if priorities is not None else rate_monotonic_priorities(network)
    )
    missing = sorted(set(network.processes) - set(prios))
    if missing:
        raise SchedulingError(f"missing priority for {missing!r}")
    exec_of = {
        name: as_positive_time(execution_times[name], f"execution time of {name!r}")
        for name in network.processes
    }
    for proc in network.processes.values():
        if proc.deadline > proc.period:
            raise SchedulingError(
                f"RTA requires constrained deadlines; {proc.name!r} has "
                f"d={proc.deadline} > T={proc.period}"
            )

    results: Dict[str, RtaResult] = {}
    for name, proc in network.processes.items():
        own = proc.burst * exec_of[name]
        higher = [
            p for p in network.processes.values()
            if prios[p.name] < prios[name]
        ]
        r = own
        converged = False
        for _ in range(max_iterations):
            interference = Time(0)
            for h in higher:
                jobs = -((-r) // h.period)  # ceil(r / T_h)
                interference += h.burst * jobs * exec_of[h.name]
            nxt = own + interference
            if nxt == r:
                converged = True
                break
            r = nxt
            if r > proc.deadline * 1000:  # hopeless divergence guard
                break
        results[name] = RtaResult(
            process=name,
            wcrt=r if converged else None,
            deadline=proc.deadline,
            converged=converged,
        )
    return results


def rta_schedulable(
    network: Network,
    execution_times: Mapping[str, TimeLike],
    priorities: Optional[Mapping[str, int]] = None,
) -> bool:
    """True iff every process's WCRT meets its deadline."""
    return all(
        r.schedulable
        for r in response_time_analysis(network, execution_times, priorities).values()
    )


def hyperbolic_bound(
    network: Network, execution_times: Mapping[str, TimeLike]
) -> float:
    """Bini & Buttazzo's hyperbolic RM test: ``prod(U_i + 1) <= 2``.

    Less pessimistic than the Liu & Layland bound; returned as the product
    so callers can compare against 2.
    """
    product = 1.0
    for name, proc in network.processes.items():
        c = as_positive_time(execution_times[name], f"execution time of {name!r}")
        product *= float(proc.burst * c / proc.period) + 1.0
    return product
