"""Tests for the runtime-overhead model (Section V-A)."""

from fractions import Fraction

import pytest

from repro.apps import build_fft_network, fft_wcets, build_fig1_network, fig1_stimulus, fig1_wcets
from repro.runtime import OverheadModel, miss_summary, run_static_order
from repro.scheduling import find_feasible_schedule, list_schedule
from repro.taskgraph import derive_task_graph, task_graph_load


class TestModel:
    def test_defaults_zero(self):
        assert OverheadModel.none().is_zero

    def test_mppa_values(self):
        ov = OverheadModel.mppa_like()
        assert ov.first_frame_arrival == 41
        assert ov.steady_frame_arrival == 20

    def test_frame_arrival_schedule(self):
        ov = OverheadModel.mppa_like()
        assert ov.frame_arrival(0) == 41
        assert ov.frame_arrival(1) == 20
        assert ov.frame_arrival(7) == 20

    def test_negative_frame_rejected(self):
        with pytest.raises(ValueError):
            OverheadModel.none().frame_arrival(-1)

    def test_create_normalizes(self):
        ov = OverheadModel.create(first_frame_arrival="1/2")
        assert ov.first_frame_arrival == Fraction(1, 2)

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            OverheadModel.create(per_job=-1)


class TestOverheadJob:
    def test_paper_fft_load_with_overhead(self):
        """'This yielded a load of ~1.2, which explains the deadline misses
        in single-processor mapping.'"""
        g = derive_task_graph(build_fft_network(), fft_wcets())
        g_ov = OverheadModel.mppa_like().as_overhead_job(g)
        load = task_graph_load(g_ov).load
        assert Fraction(110, 100) < load < Fraction(125, 100)
        assert task_graph_load(g_ov).min_processors == 2

    def test_overhead_job_precedes_all_sources(self):
        g = derive_task_graph(build_fft_network(), fft_wcets())
        g_ov = OverheadModel.mppa_like().as_overhead_job(g)
        assert len(g_ov) == len(g) + 1
        assert g_ov.jobs[0].process == "__overhead__"
        # the old source (generator) now has the overhead job as predecessor
        gen = g_ov.index_of("generator[1]")
        assert 0 in g_ov.predecessors(gen)

    def test_zero_overhead_is_copy(self):
        g = derive_task_graph(build_fft_network(), fft_wcets())
        g2 = OverheadModel.none().as_overhead_job(g)
        assert len(g2) == len(g)

    def test_explicit_value(self):
        g = derive_task_graph(build_fft_network(), fft_wcets())
        g_ov = OverheadModel.none().as_overhead_job(g, overhead=41)
        assert g_ov.jobs[0].wcet == 41


class TestRuntimeEffects:
    def test_arrival_overhead_delays_first_jobs(self):
        net = build_fig1_network()
        g = derive_task_graph(net, fig1_wcets())
        s = find_feasible_schedule(g, 2)
        ov = OverheadModel.create(first_frame_arrival=41, steady_frame_arrival=20)
        result = run_static_order(net, s, 2, fig1_stimulus(2), overheads=ov)
        first_frame = [r for r in result.executed() if r.frame == 0]
        assert min(r.start for r in first_frame) >= 41
        second = [r for r in result.executed() if r.frame == 1]
        assert min(r.start for r in second) >= 200 + 20

    def test_overhead_intervals_recorded(self):
        net = build_fig1_network()
        g = derive_task_graph(net, fig1_wcets())
        s = find_feasible_schedule(g, 2)
        ov = OverheadModel.mppa_like()
        result = run_static_order(net, s, 3, fig1_stimulus(3), overheads=ov)
        assert result.overhead_intervals == [
            (0, 0, 41), (1, 200, 220), (2, 400, 420)
        ]

    def test_per_job_overhead_inflates_execution(self):
        net = build_fig1_network()
        g = derive_task_graph(net, fig1_wcets())
        s = find_feasible_schedule(g, 2)
        ov = OverheadModel.create(per_job=3)
        result = run_static_order(net, s, 1, fig1_stimulus(1), overheads=ov)
        for r in result.executed():
            assert r.end - r.start == 25 + 3

    def test_overhead_can_cause_misses(self):
        """FFT on one processor with the MPPA overhead misses deadlines;
        without overhead it does not (load 0.93 < 1)."""
        from repro.apps import fft_stimulus

        net = build_fft_network()
        g = derive_task_graph(net, fft_wcets())
        s = list_schedule(g, 1, "alap")
        stim = fft_stimulus([[1, 2, 3, 4]] * 4)
        clean = run_static_order(net, s, 4, stim)
        noisy = run_static_order(net, s, 4, stim,
                                 overheads=OverheadModel.mppa_like())
        assert miss_summary(clean).missed_jobs == 0
        assert miss_summary(noisy).missed_jobs > 0

    def test_two_processors_absorb_overhead(self):
        from repro.apps import fft_stimulus

        net = build_fft_network()
        g = derive_task_graph(net, fft_wcets())
        s = find_feasible_schedule(g, 2)
        stim = fft_stimulus([[1, 2, 3, 4]] * 4)
        result = run_static_order(net, s, 4, stim,
                                  overheads=OverheadModel.mppa_like())
        assert miss_summary(result).missed_jobs == 0
