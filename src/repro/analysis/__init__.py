"""Analysis utilities: determinism checking and experiment reporting."""

from .determinism import (
    DeterminismReport,
    VariantOutcome,
    check_determinism,
    first_divergence,
)
from .report import ExperimentReport, Row, approx
from .response import (
    RtaResult,
    hyperbolic_bound,
    response_time_analysis,
    rta_schedulable,
    total_utilization,
    utilization_bound,
)

__all__ = [
    "DeterminismReport",
    "VariantOutcome",
    "check_determinism",
    "first_divergence",
    "ExperimentReport",
    "Row",
    "approx",
    "RtaResult",
    "hyperbolic_bound",
    "response_time_analysis",
    "rta_schedulable",
    "total_utilization",
    "utilization_bound",
]
