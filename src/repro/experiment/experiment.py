"""Experiment: a lazy, caching facade over the paper's full pipeline.

One :class:`Experiment` wraps one :class:`~repro.experiment.scenario.
Scenario` and exposes the pipeline stages as memoised accessors::

    exp = Experiment(scenario)
    exp.network()        # workload factory, built once
    exp.task_graph()     # Section III-A derivation
    exp.schedule()       # Section III-B list scheduling (portfolio)
    exp.run()            # Section IV online static-order execution
    exp.reference()      # Section II-B zero-delay reference semantics
    exp.check_determinism()   # Prop. 2.1 / 4.1 matrix
    exp.report()         # paper-style text report

Each stage is computed on first access and cached; observers
(:class:`~repro.runtime.observers.ExecutionObserver`) can be attached to
:meth:`Experiment.run`, and a cached run is *replayed* into late-attached
observers rather than recomputed whenever the stored result allows it.

Experiments can share a :class:`PipelineCache`: the sweep runner
(:mod:`repro.experiment.sweep`) hands every cell the same cache, so
scenarios that differ only in runtime axes (jitter seed, overheads, frame
count, stimulus) reuse one derivation and one schedule.  The cache counts
its stage computations — that count is the contract the sweep tests pin.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Optional, Sequence

from ..analysis.determinism import DeterminismReport, check_determinism
from ..analysis.report import ExperimentReport
from ..core.network import Network
from ..core.semantics import ExecutionResult, run_zero_delay
from ..errors import RuntimeModelError
from ..runtime.executor import RuntimeResult, run_static_order
from ..runtime.observers import (
    _DATA_HOOKS,
    _overrides,
    ExecutionObserver,
    MetricsObserver,
    replay,
)
from ..scheduling.optimizer import DEFAULT_PORTFOLIO, find_feasible_schedule
from ..scheduling.schedule import StaticSchedule
from ..taskgraph.derivation import derive_task_graph
from ..taskgraph.graph import TaskGraph
from ..taskgraph.load import task_graph_load
from .scenario import Scenario

__all__ = ["Experiment", "PipelineCache"]


@contextmanager
def _stage(name: str) -> Any:
    """Attribute exceptions escaping a pipeline stage to that stage.

    The sweep's error capture reads ``exc._pipeline_stage`` to fill
    :attr:`~repro.experiment.sweep.SweepCellError.stage`.  Tag-if-absent:
    when stages nest (``schedule`` → ``task_graph`` → ``network``) the
    innermost stage that raised wins.
    """
    try:
        yield
    except Exception as exc:
        if not hasattr(exc, "_pipeline_stage"):
            try:
                exc._pipeline_stage = name
            except AttributeError:
                pass  # exceptions with __slots__ stay stage "run"
        raise


class PipelineCache:
    """Stage artifacts shared across experiments, keyed by scenario stage keys.

    Networks, task graphs and schedules are cached by
    :meth:`Scenario.workload_key` / :meth:`Scenario.derivation_key` /
    :meth:`Scenario.schedule_key` respectively.  The ``*_computed``
    counters record how many times each stage actually ran — the sweep
    tests assert exactly one derivation and one scheduling pass per
    distinct key, which is the whole point of sharing the cache.
    """

    def __init__(self) -> None:
        self._networks: Dict[Any, Network] = {}
        self._graphs: Dict[Any, TaskGraph] = {}
        self._schedules: Dict[Any, StaticSchedule] = {}
        self.networks_built = 0
        self.derivations_computed = 0
        self.schedules_computed = 0

    def network(self, scenario: Scenario) -> Network:
        key = scenario.workload_key()
        net = self._networks.get(key)
        if net is None:
            with _stage("network"):
                net = self._networks[key] = scenario.build_network()
            self.networks_built += 1
        return net

    def task_graph(self, scenario: Scenario) -> TaskGraph:
        key = scenario.derivation_key()
        graph = self._graphs.get(key)
        if graph is None:
            with _stage("derivation"):
                graph = derive_task_graph(
                    self.network(scenario),
                    scenario.wcet_spec(),
                    horizon=scenario.horizon,
                )
            self._graphs[key] = graph
            self.derivations_computed += 1
        return graph

    def schedule(self, scenario: Scenario) -> StaticSchedule:
        key = scenario.schedule_key()
        schedule = self._schedules.get(key)
        if schedule is None:
            with _stage("scheduling"):
                schedule = find_feasible_schedule(
                    self.task_graph(scenario),
                    scenario.scheduling_target(),
                    scenario.heuristics or DEFAULT_PORTFOLIO,
                )
            self._schedules[key] = schedule
            self.schedules_computed += 1
        return schedule


class Experiment:
    """Lazy pipeline facade for one scenario (optionally cache-sharing)."""

    def __init__(
        self, scenario: Scenario, cache: Optional[PipelineCache] = None
    ) -> None:
        if not isinstance(scenario, Scenario):
            raise RuntimeModelError("Experiment takes a Scenario")
        self.scenario = scenario
        self.cache = cache if cache is not None else PipelineCache()
        self._result: Optional[RuntimeResult] = None
        self._reference: Optional[ExecutionResult] = None
        self._metrics: Optional[MetricsObserver] = None

    # -- pipeline stages ------------------------------------------------
    def network(self) -> Network:
        """The workload's network (built once per cache)."""
        return self.cache.network(self.scenario)

    def task_graph(self) -> TaskGraph:
        """The derived task graph (Section III-A, cached)."""
        return self.cache.task_graph(self.scenario)

    def schedule(self) -> StaticSchedule:
        """A feasible static schedule (Section III-B, cached)."""
        return self.cache.schedule(self.scenario)

    def run(
        self,
        *,
        observers: Sequence[ExecutionObserver] = (),
        force: bool = False,
    ) -> RuntimeResult:
        """Simulate the online static-order policy (Section IV, cached).

        The first call executes the scenario and caches the result; later
        calls return the cache.  *observers* attach live on the first (or a
        ``force=True``) execution; on a cached result they are fed through
        :func:`~repro.runtime.observers.replay` instead — falling back to a
        fresh execution when the stored result cannot be replayed (records
        or trace suppressed by the scenario's fast-mode flags).
        """
        if self._result is not None and not force:
            if observers:
                if not self._replayable_for(observers):
                    return self._execute(observers)
                try:
                    replay(self._result, *observers)
                except RuntimeModelError:
                    return self._execute(observers)
            return self._result
        return self._execute(observers)

    def _replayable_for(self, observers: Sequence[ExecutionObserver]) -> bool:
        """Can the cached result feed *observers* everything they consume?

        ``replay`` raises for record-suppressed results but silently skips
        data-phase events when the trace was suppressed — a data-consuming
        observer would then aggregate nothing; such observers get a fresh
        execution instead.
        """
        result = self._result
        if result.trace_collected or not result.data_collected:
            return True
        return not any(
            _overrides(ob, name, base)
            for ob in observers
            for name, base in _DATA_HOOKS
        )

    def _execute(self, observers: Sequence[ExecutionObserver]) -> RuntimeResult:
        s = self.scenario
        # A fresh execution replaces the cached result, so a previously
        # built metrics observer would keep reporting the discarded run:
        # invalidate it here (the only place the result is replaced).
        self._metrics = None
        self._result = run_static_order(
            self.network(),
            self.schedule(),
            s.n_frames,
            s.stimulus,
            s.execution_model(),
            s.overheads,
            observers=observers,
            records_only=s.records_only,
            collect_records=s.collect_records,
            collect_trace=s.collect_trace,
        )
        return self._result

    def metrics(self) -> MetricsObserver:
        """A :class:`MetricsObserver` that has seen this experiment's run."""
        if self._metrics is None:
            m = MetricsObserver()
            self.run(observers=[m])
            self._metrics = m
        return self._metrics

    def reference(self) -> ExecutionResult:
        """The zero-delay reference over the same horizon (cached)."""
        if self._reference is None:
            horizon = self.task_graph().hyperperiod * self.scenario.n_frames
            self._reference = run_zero_delay(
                self.network(), horizon, self.scenario.stimulus
            )
        return self._reference

    def check_determinism(self, **overrides: Any) -> DeterminismReport:
        """Run the Prop. 2.1 determinism matrix for this scenario.

        The scenario supplies network, WCETs, frames, stimulus and
        overheads; matrix parameters (``processor_counts``, ``heuristics``,
        ``jitter_seeds``) default to the checker's own and can be overridden
        by keyword.
        """
        overrides.setdefault("overheads", self.scenario.overheads)
        return check_determinism(
            self.network(),
            self.scenario.wcet_spec(),
            self.scenario.n_frames,
            self.scenario.stimulus,
            **overrides,
        )

    # -- reporting ------------------------------------------------------
    def report(self) -> ExperimentReport:
        """Paper-style summary of every stage this experiment ran."""
        s = self.scenario
        graph = self.task_graph()
        load = task_graph_load(graph)
        metrics = self.metrics()
        summary = metrics.miss_summary()
        rep = ExperimentReport(
            experiment=s.label or s.describe(), artifact="scenario"
        )
        rep.add("jobs / frame", "-", len(graph))
        rep.add("precedence edges", "-", graph.edge_count)
        rep.add("hyperperiod [ms]", "-", graph.hyperperiod)
        rep.add("load", "-", f"{float(load.load):.3f}")
        rep.add("processors", f">= {load.min_processors}", s.processors)
        if s.platform is not None and not s.platform.is_unit:
            rep.add("platform", "-", s.platform.describe())
        rep.add("frames simulated", "-", s.n_frames)
        rep.add("jobs executed", "-", summary.executed_jobs)
        rep.add("deadline misses", "-", summary.missed_jobs)
        rep.add("makespan [ms]", "-", metrics.makespan)
        return rep
