"""ASCII Gantt charts of schedules and runtime traces (Figs. 4 and 6).

Two renderers:

* :func:`schedule_gantt` — a static schedule's frame, one row per processor
  (the Fig. 4 view);
* :func:`runtime_gantt` — a simulated run's records, one row per processor
  plus a ``runtime`` row showing frame-arrival overhead intervals (the
  Fig. 6 view).

The renderers are deliberately plain-text so benchmark output embeds them
directly in reports.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from ..core.timebase import Time, time_str
from ..scheduling.schedule import StaticSchedule
from .executor import RuntimeResult

Bar = Tuple[Time, Time, str]  # (start, end, label)


def _render_rows(
    rows: Sequence[Tuple[str, Sequence[Bar]]],
    t_end: Time,
    width: int,
) -> str:
    """Shared fixed-width renderer: each row is scaled onto *width* columns."""
    if t_end <= 0:
        t_end = Time(1)
    lines: List[str] = []
    label_w = max((len(name) for name, _ in rows), default=4)
    scale = Fraction(width, 1) / t_end

    for name, bars in rows:
        canvas = [" "] * width
        for start, end, label in sorted(bars):
            c0 = int(start * scale)
            c1 = max(c0 + 1, int(end * scale))
            c1 = min(c1, width)
            for c in range(c0, c1):
                canvas[c] = "="
            text = label[: max(0, c1 - c0)]
            for i, ch in enumerate(text):
                if c0 + i < width:
                    canvas[c0 + i] = ch
        lines.append(f"{name.rjust(label_w)} |{''.join(canvas)}|")

    axis = f"{' ' * label_w} 0{' ' * (width - len(time_str(t_end)) - 1)}{time_str(t_end)}"
    lines.append(axis)
    return "\n".join(lines)


def schedule_gantt(schedule: StaticSchedule, width: int = 72) -> str:
    """Render one frame of a static schedule (Fig. 4 style)."""
    rows: List[Tuple[str, List[Bar]]] = []
    for m in range(schedule.processors):
        bars: List[Bar] = []
        for i in schedule.processor_order(m):
            job = schedule.graph.jobs[i]
            bars.append((schedule.start(i), schedule.end(i), job.name))
        rows.append((f"M{m + 1}", bars))
    horizon = schedule.graph.hyperperiod or schedule.makespan()
    return _render_rows(rows, max(horizon, schedule.makespan()), width)


def runtime_gantt(
    result: RuntimeResult,
    frames: Optional[int] = None,
    width: int = 96,
) -> str:
    """Render a simulated run (Fig. 6 style), including the runtime row."""
    limit = result.hyperperiod * (frames if frames is not None else result.frames)
    rows: List[Tuple[str, List[Bar]]] = []
    for m in range(result.processors):
        bars = [
            (r.start, r.end, r.name)
            for r in result.records
            if r.processor == m and not r.is_false and r.start < limit
        ]
        rows.append((f"M{m + 1}", bars))
    runtime_bars: List[Bar] = [
        (start, end, "rt")
        for _frame, start, end in result.overhead_intervals
        if start < limit
    ]
    if runtime_bars:
        rows.append(("runtime", runtime_bars))
    t_end = max(
        [limit]
        + [r.end for r in result.records if not r.is_false and r.start < limit]
    )
    return _render_rows(rows, t_end, width)
