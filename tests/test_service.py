"""Sweep service (ISSUE 9): JSON-RPC protocol round-trips, the asyncio
orchestrator over the shared pool, server/client end-to-end identity
with the in-process sweep, concurrent clients sharing one WAL sqlite
store, and disconnect/cancel never wedging the pool."""

import asyncio
import json
import socket
import threading

import pytest

from repro import FaultPlan, ScenarioMatrix, run_sweep
from repro.analysis.compare import compare_payloads
from repro.apps import fig1_scenario, fms_scenario
from repro.errors import (
    ProtocolError,
    ServiceError,
    SweepError,
    UnknownTicketError,
)
from repro.experiment import SweepPool
from repro.experiment.sweep import SweepCellError, SweepRow
from repro.io.json_io import sweep_result_to_dict
from repro.service import ServiceClient, SweepOrchestrator, SweepServer
from repro.service import protocol

METRICS = ("executed_jobs", "missed_jobs", "makespan")


def fig1_matrix():
    return ScenarioMatrix(
        fig1_scenario(n_frames=1),
        {"jitter_seed": [0, 1], "processors": [2, 3]},
    )


def small_matrix():
    # Overlaps fig1_matrix: the base scenario's processors=2 makes these
    # two cells identical to fig1_matrix's processors=2 column, so a
    # shared store computed by one client serves the other.
    return ScenarioMatrix(fig1_scenario(n_frames=1), {"jitter_seed": [0, 1]})


@pytest.fixture(scope="module")
def fig1_serial():
    return run_sweep(fig1_matrix(), metrics=METRICS)


@pytest.fixture(scope="module")
def small_serial():
    return run_sweep(small_matrix(), metrics=METRICS)


# ---------------------------------------------------------------------------
# protocol layer
# ---------------------------------------------------------------------------
class TestProtocol:
    def test_request_response_round_trip(self):
        req = protocol.request("submit", {"client": "a"}, 7)
        back = protocol.decode_line(protocol.encode(req))
        assert back == req
        method, params, rid = protocol.check_request(back)
        assert (method, params, rid) == ("submit", {"client": "a"}, 7)
        resp = protocol.response(7, {"ticket": 1})
        assert protocol.decode_line(protocol.encode(resp))["result"] == {
            "ticket": 1
        }

    def test_encode_preserves_key_order(self):
        # Axis order is semantic (it fixes the cell product order); the
        # wire must not alphabetise it.
        line = protocol.encode({"b": 1, "a": 2})
        assert line == b'{"b":1,"a":2}\n'
        assert list(protocol.decode_line(line)) == ["b", "a"]

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            protocol.decode_line(b"not json\n")
        with pytest.raises(ProtocolError):
            protocol.decode_line(b"[1, 2]\n")

    def test_check_request_rejects_bad_shapes(self):
        with pytest.raises(ProtocolError):  # wrong version
            protocol.check_request({"jsonrpc": "1.0", "method": "x", "id": 1})
        with pytest.raises(ProtocolError):  # no method
            protocol.check_request({"jsonrpc": "2.0", "id": 1})
        with pytest.raises(ProtocolError):  # client notification
            protocol.check_request({"jsonrpc": "2.0", "method": "x"})
        with pytest.raises(ProtocolError):  # params not an object
            protocol.check_request(
                {"jsonrpc": "2.0", "method": "x", "id": 1, "params": [1]}
            )

    def test_row_wire_round_trip_exact_fractions(self, fig1_serial):
        for row in fig1_serial.rows:
            wire = protocol.sweep_row_to_wire(row)
            json.dumps(wire)  # pure JSON
            back = protocol.sweep_row_from_wire(wire)
            assert back == row  # Fractions survive exactly

    def test_error_row_wire_round_trip(self):
        row = SweepRow(
            cell={"jitter_seed": 1},
            metrics={},
            error=SweepCellError(
                error_type="ValueError", message="boom", stage="run",
                retries=2,
            ),
        )
        back = protocol.sweep_row_from_wire(protocol.sweep_row_to_wire(row))
        assert back == row


# ---------------------------------------------------------------------------
# orchestrator layer (no sockets)
# ---------------------------------------------------------------------------
class TestOrchestrator:
    def test_submit_stream_matches_serial(self, fig1_serial):
        async def scenario():
            rows, events = [], []
            tid = await orch.submit(fig1_matrix(), METRICS, client="t")
            async for kind, payload in orch.stream(tid):
                if kind == "row":
                    rows.append(payload)
                elif kind == "event":
                    events.append(payload)
                else:
                    final = payload
            return rows, events, final, tid

        with SweepOrchestrator(workers=1) as orch:
            rows, events, final, tid = asyncio.run(scenario())
            status = orch.status(tid)
        assert final.rows == fig1_serial.rows  # bit-identical
        assert sorted(
            rows, key=lambda r: tuple(map(str, r.cell.items()))
        ) == sorted(
            final.rows, key=lambda r: tuple(map(str, r.cell.items()))
        )
        assert any(e.kind == "finished" for e in events)
        assert status.state == "done" and status.done
        assert status.rows_streamed == len(final.rows)
        assert status.client == "t"

    def test_unknown_ticket_raises(self):
        with SweepOrchestrator(workers=1) as orch:
            with pytest.raises(UnknownTicketError, match="unknown ticket"):
                orch.status(99)

    def test_finished_tickets_are_garbage_collected(self):
        async def run_one(orch):
            tid = await orch.submit(small_matrix(), METRICS, client="gc")
            async for kind, _ in orch.stream(tid):
                if kind == "done":
                    break
            return tid

        with SweepOrchestrator(workers=1, max_finished_tickets=2) as orch:
            tids = [asyncio.run(run_one(orch)) for _ in range(3)]
            # The two newest finished tickets are retained ...
            assert orch.status(tids[1]).state == "done"
            assert orch.status(tids[2]).state == "done"
            # ... the oldest was evicted: a typed ServiceError subclass,
            # never a bare KeyError from the ticket table.
            with pytest.raises(UnknownTicketError, match="unknown ticket"):
                orch.status(tids[0])
            with pytest.raises(ServiceError):
                orch.status(tids[0])

    def test_bad_max_finished_tickets_rejected(self):
        with pytest.raises(ServiceError, match="max_finished_tickets"):
            SweepOrchestrator(workers=1, max_finished_tickets=0)

    def test_external_pool_is_not_closed(self, fig1_serial):
        async def scenario(orch):
            tid = await orch.submit(small_matrix(), METRICS)
            async for kind, payload in orch.stream(tid):
                if kind == "done":
                    return payload

        with SweepPool(workers=1) as pool:
            with SweepOrchestrator(pool) as orch:
                result = asyncio.run(scenario(orch))
            # The orchestrator is gone; the caller's pool still serves.
            assert not pool._closed
            again = pool.submit(small_matrix(), METRICS).result()
        assert result.rows == again.rows


# ---------------------------------------------------------------------------
# server + client end to end
# ---------------------------------------------------------------------------
class TestServedSweeps:
    def test_served_rows_bit_identical_to_serial(self, fig1_serial):
        with SweepServer(workers=1) as server:
            host, port = server.address
            rows, events = [], []
            with ServiceClient(host, port, client="e2e") as client:
                assert client.ping()
                remote = client.run_sweep(
                    fig1_matrix(), METRICS,
                    on_row=rows.append, on_progress=events.append,
                )
        assert remote.rows == fig1_serial.rows
        assert len(rows) == len(fig1_serial.rows)
        assert any(e.kind == "finished" for e in events)
        # The acceptance gate: the shared comparison engine sees zero
        # drift between the served table and the in-process one.
        comparison = compare_payloads(
            sweep_result_to_dict(fig1_serial),
            sweep_result_to_dict(remote),
            tolerance=0.0,
        )
        assert comparison.exit_code == 0 and not comparison.regressions

    def test_submit_status_stream_as_separate_calls(self):
        with SweepServer(workers=1) as server:
            host, port = server.address
            with ServiceClient(host, port) as client:
                submitted = client.submit(small_matrix(), METRICS)
                ticket = submitted["ticket"]
                assert submitted["status"]["state"] in (
                    "queued", "running", "done"
                )
                result = client.stream(ticket)
                status = client.status(ticket)
        assert len(result.rows) == len(small_matrix())
        assert status.state == "done" and status.done
        assert status.rows_streamed == len(result.rows)

    def test_sweep_failure_surfaces_as_sweep_error(self):
        with SweepServer(workers=1) as server:
            host, port = server.address
            with ServiceClient(host, port) as client:
                with pytest.raises(SweepError):
                    client.run_sweep(
                        small_matrix(), METRICS,
                        faults=FaultPlan(raise_at=(1,)),
                        on_error="raise",
                    )
                # The failure poisoned nothing: the same connection
                # immediately serves a healthy sweep.
                ok = client.run_sweep(small_matrix(), METRICS)
        assert len(ok.rows) == len(small_matrix())

    def test_captured_fault_rows_travel(self):
        with SweepServer(workers=1) as server:
            host, port = server.address
            with ServiceClient(host, port) as client:
                result = client.run_sweep(
                    small_matrix(), METRICS,
                    faults=FaultPlan(raise_at=(1,)),
                )
        assert len(result.rows) == 1
        assert len(result.failed_rows) == 1
        assert result.failed_rows[0].error is not None
        assert result.stats.failed_cells == 1

    def test_unknown_method_and_bad_params(self):
        with SweepServer(workers=1) as server:
            host, port = server.address
            with ServiceClient(host, port) as client:
                with pytest.raises(ServiceError, match="-32601"):
                    client._call("frobnicate", {})
                with pytest.raises(ServiceError, match="-32602"):
                    client._call("status", {"ticket": "one"})

    def test_shutdown_stops_the_server(self):
        server = SweepServer(workers=1)
        host, port = server.start()
        with ServiceClient(host, port) as client:
            client.shutdown()
        server.wait()  # returns because the shutdown request landed
        server.close()
        with pytest.raises(ServiceError):
            ServiceClient(host, port, timeout=2.0)


# ---------------------------------------------------------------------------
# the acceptance scenario: concurrent clients, one shared sqlite store
# ---------------------------------------------------------------------------
class TestConcurrentClients:
    def test_two_clients_share_one_store(
        self, tmp_path, fig1_serial, small_serial
    ):
        """Two concurrent clients with overlapping matrices both
        complete against one WAL-mode SqliteSweepStore; afterwards the
        union is fully checkpointed, so a third pass is all store hits
        and streams rows without a single dispatch."""
        store_path = str(tmp_path / "service.db")
        with SweepServer(workers=1, store=store_path) as server:
            host, port = server.address
            outcomes = {}

            def drive(name, matrix):
                events = []
                try:
                    with ServiceClient(host, port, client=name) as client:
                        result = client.run_sweep(
                            matrix, METRICS, on_progress=events.append
                        )
                    outcomes[name] = (result, events)
                except Exception as exc:  # surfaced in the main thread
                    outcomes[name] = exc

            threads = [
                threading.Thread(
                    target=drive, args=("alice", fig1_matrix())
                ),
                threading.Thread(
                    target=drive, args=("bob", small_matrix())
                ),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)
            assert not any(t.is_alive() for t in threads)
            for name in ("alice", "bob"):
                assert not isinstance(outcomes[name], Exception), (
                    outcomes[name]
                )

            alice, _ = outcomes["alice"]
            bob, _ = outcomes["bob"]
            # Both completed with bit-identical rows (the shared store
            # only short-circuits computation, never changes results).
            assert alice.rows == fig1_serial.rows
            assert bob.rows == small_serial.rows
            # Every cell was either computed here or served from the
            # other client's checkpoints — the hits surface in each
            # client's own SweepStats.
            assert alice.stats.store_hits + alice.stats.runs == len(
                alice.rows
            )
            assert bob.stats.store_hits + bob.stats.runs == len(bob.rows)
            assert (
                alice.stats.store_hits
                + bob.stats.store_hits
                + alice.stats.runs
                + bob.stats.runs
                == len(alice.rows) + len(bob.rows)
            )

            # Third pass over the union: pure cache tier, no dispatch.
            events = []
            with ServiceClient(host, port, client="carol") as client:
                replay = client.run_sweep(
                    fig1_matrix(), METRICS, on_progress=events.append
                )
            assert replay.rows == fig1_serial.rows
            assert replay.stats.store_hits == len(replay.rows)
            assert replay.stats.runs == 0
            kinds = [e.kind for e in events]
            assert "store-hits" in kinds and "dispatch" not in kinds


# ---------------------------------------------------------------------------
# disconnect / cancel never wedge the pool
# ---------------------------------------------------------------------------
class TestDisconnectAndCancel:
    def test_cancel_rpc_terminates_the_ticket(self):
        with SweepServer(workers=1) as server:
            host, port = server.address
            with ServiceClient(host, port) as client:
                matrix = ScenarioMatrix(
                    fms_scenario(n_frames=1),
                    {"processors": [1, 2], "jitter_seed": [0, 1, 2]},
                )
                ticket = client.submit(matrix, METRICS)["ticket"]
                client.cancel(ticket)  # either withdrew groups or no-op
                result = client.stream(ticket)  # terminates either way
                status = client.status(ticket)
        assert status.done
        assert len(result.rows) + len(result.failed_rows) <= len(matrix)

    def test_disconnect_mid_sweep_does_not_wedge_the_pool(self):
        with SweepServer(workers=1) as server:
            host, port = server.address
            # First client submits a multi-group sweep and vanishes
            # without ever streaming it.
            abandoned = ServiceClient(host, port, client="ghost")
            abandoned.submit(fig1_matrix(), METRICS)
            abandoned.close()
            # The pool keeps serving: a second client's sweep completes.
            with ServiceClient(host, port, client="alive") as client:
                result = client.run_sweep(small_matrix(), METRICS)
        assert len(result.rows) == len(small_matrix())

    def test_raw_socket_garbage_gets_an_error_line(self):
        with SweepServer(workers=1) as server:
            host, port = server.address
            with socket.create_connection((host, port), 10.0) as sock:
                sock.sendall(b"this is not json\n")
                line = sock.makefile("rb").readline()
        message = json.loads(line)
        assert message["error"]["code"] == protocol.PARSE_ERROR


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
