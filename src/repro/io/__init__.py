"""Interchange formats: DOT drawings, JSON artifacts, VCD waveforms."""

from .dot import network_to_dot, task_graph_to_dot, write_dot
from .json_io import (
    FormatError,
    load_json,
    network_from_dict,
    network_to_dict,
    save_json,
    schedule_from_dict,
    schedule_to_dict,
    task_graph_from_dict,
    task_graph_to_dict,
)
from .vcd import VcdError, runtime_result_to_vcd, trace_to_vcd, write_vcd

__all__ = [
    "network_to_dot",
    "task_graph_to_dot",
    "write_dot",
    "FormatError",
    "load_json",
    "network_from_dict",
    "network_to_dict",
    "save_json",
    "schedule_from_dict",
    "schedule_to_dict",
    "task_graph_from_dict",
    "task_graph_to_dict",
    "VcdError",
    "runtime_result_to_vcd",
    "trace_to_vcd",
    "write_vcd",
]
