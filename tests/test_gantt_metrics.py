"""Tests for Gantt rendering and runtime metrics."""

from fractions import Fraction

import pytest

from repro.apps import build_fig1_network, fig1_stimulus, fig1_wcets
from repro.runtime import (
    OverheadModel,
    frame_makespans,
    jobs_of_process,
    miss_summary,
    processor_utilization,
    response_times,
    run_static_order,
    runtime_gantt,
    schedule_gantt,
)
from repro.scheduling import find_feasible_schedule, list_schedule
from repro.taskgraph import derive_task_graph


@pytest.fixture(scope="module")
def setup():
    """Overhead-free run: Fig. 1's OutputB chain has zero slack, so any
    frame-arrival overhead would (correctly) cause deadline misses."""
    net = build_fig1_network()
    g = derive_task_graph(net, fig1_wcets())
    s = find_feasible_schedule(g, 2)
    result = run_static_order(net, s, 3, fig1_stimulus(3))
    return net, g, s, result


@pytest.fixture(scope="module")
def overhead_setup():
    net = build_fig1_network()
    g = derive_task_graph(net, fig1_wcets())
    s = find_feasible_schedule(g, 2)
    result = run_static_order(net, s, 3, fig1_stimulus(3),
                              overheads=OverheadModel.mppa_like())
    return result


class TestScheduleGantt:
    def test_has_row_per_processor(self, setup):
        _, _, s, _ = setup
        text = schedule_gantt(s)
        assert "M1 |" in text and "M2 |" in text

    def test_contains_job_labels(self, setup):
        _, _, s, _ = setup
        text = schedule_gantt(s, width=120)
        assert "InputA[1]" in text

    def test_axis_shows_horizon(self, setup):
        _, _, s, _ = setup
        assert "200" in schedule_gantt(s)


class TestRuntimeGantt:
    def test_has_runtime_row_with_overhead(self, overhead_setup):
        text = runtime_gantt(overhead_setup)
        assert "runtime |" in text

    def test_frame_limit(self, overhead_setup):
        one = runtime_gantt(overhead_setup, frames=1)
        assert "600" not in one.splitlines()[-1]

    def test_no_runtime_row_without_overhead(self):
        net = build_fig1_network()
        g = derive_task_graph(net, fig1_wcets())
        s = find_feasible_schedule(g, 2)
        result = run_static_order(net, s, 1, fig1_stimulus(1))
        assert "runtime" not in runtime_gantt(result)


class TestMetrics:
    def test_miss_summary_counts(self, setup):
        _, g, _, result = setup
        ms = miss_summary(result)
        assert ms.total_jobs == 3 * len(g)
        assert ms.executed_jobs + ms.false_jobs == ms.total_jobs
        assert ms.missed_jobs == 0
        assert ms.miss_ratio == 0.0
        assert not ms.any_missed

    def test_miss_summary_with_misses(self):
        net = build_fig1_network()
        g = derive_task_graph(net, fig1_wcets())
        s = list_schedule(g, 1, "alap")  # infeasible: load 1.5
        # Without sporadic arrivals the server jobs are false and the 8
        # remaining 25 ms jobs exactly fill the 200 ms frame — so feed a
        # CoefB command (served in frame 1) to overload the processor.
        result = run_static_order(net, s, 2, fig1_stimulus(2, coef_arrivals=[150]))
        ms = miss_summary(result)
        assert ms.any_missed
        assert ms.worst_lateness > 0
        assert 0 < ms.miss_ratio <= 1

    def test_response_times_keys(self, setup):
        _, _, _, result = setup
        rt = response_times(result)
        assert set(rt) >= {"InputA", "FilterA", "OutputB"}
        assert all(v > 0 for v in rt.values())

    def test_processor_utilization(self, setup):
        _, _, _, result = setup
        util = processor_utilization(result)
        assert len(util) == 2
        assert all(0 < u < 1 for u in util)

    def test_overhead_run_misses_zero_slack_chain(self, overhead_setup):
        """Fig. 1's OutputB[1] chain exactly fills its 100 ms window, so the
        frame-arrival overhead makes it (and only it) late."""
        ms = miss_summary(overhead_setup)
        assert ms.any_missed
        assert all(r.process == "OutputB" for r in overhead_setup.misses())

    def test_frame_makespans(self, setup):
        _, _, _, result = setup
        spans = frame_makespans(result)
        assert len(spans) == 3
        assert all(0 < s <= 200 for s in spans)

    def test_jobs_of_process_ordering(self, setup):
        _, _, _, result = setup
        rows = jobs_of_process(result, "FilterA")
        assert [(r.frame, r.k_frame) for r in rows] == [
            (0, 1), (0, 2), (1, 1), (1, 2), (2, 1), (2, 2)
        ]

    def test_max_response_time(self, setup):
        _, _, _, result = setup
        assert result.max_response_time() >= result.max_response_time("InputA") > 0

    def test_makespan(self, setup):
        _, _, _, result = setup
        assert result.makespan() <= 3 * 200
