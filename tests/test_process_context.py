"""Unit tests for JobContext: the capability object of a running job."""

from fractions import Fraction

import pytest

from repro.core.channels import (
    ChannelKind,
    ChannelSpec,
    ExternalOutputSpec,
    ExternalOutputState,
    is_no_data,
)
from repro.core.process import JobContext, KernelBehavior, Process
from repro.core.events import PeriodicGenerator
from repro.core.trace import Assign, ChannelRead, ChannelWrite, ExternalRead, ExternalWrite, Trace
from repro.errors import ChannelError


def make_ctx(trace=None, **overrides):
    fifo = ChannelSpec("in_c", ChannelKind.FIFO, "x", "p").new_state()
    out = ChannelSpec("out_c", ChannelKind.FIFO, "p", "y").new_state()
    ext_out = ExternalOutputState(ExternalOutputSpec("o", "p"))
    defaults = dict(
        process="p",
        k=1,
        now=Fraction(0),
        variables={},
        inputs={"in_c": fifo},
        outputs={"out_c": out},
        external_inputs={"i": {1: "sample-1", 2: "sample-2"}},
        external_outputs={"o": ext_out},
        trace=trace,
    )
    defaults.update(overrides)
    return JobContext(**defaults), fifo, out, ext_out


class TestChannelAccess:
    def test_read_empty_input(self):
        ctx, _, _, _ = make_ctx()
        assert is_no_data(ctx.read("in_c"))

    def test_read_consumes(self):
        ctx, fifo, _, _ = make_ctx()
        fifo.write("v")
        assert ctx.read("in_c") == "v"
        assert is_no_data(ctx.read("in_c"))

    def test_peek(self):
        ctx, fifo, _, _ = make_ctx()
        fifo.write("v")
        assert ctx.peek("in_c") == "v"
        assert ctx.read("in_c") == "v"

    def test_write_goes_to_output(self):
        ctx, _, out, _ = make_ctx()
        ctx.write("out_c", 7)
        assert out.read() == 7

    def test_cannot_read_output_channel(self):
        ctx, _, _, _ = make_ctx()
        with pytest.raises(ChannelError, match="no input channel"):
            ctx.read("out_c")

    def test_cannot_write_input_channel(self):
        ctx, _, _, _ = make_ctx()
        with pytest.raises(ChannelError, match="no output channel"):
            ctx.write("in_c", 1)

    def test_unknown_channel(self):
        ctx, _, _, _ = make_ctx()
        with pytest.raises(ChannelError):
            ctx.read("ghost")


class TestExternalAccess:
    def test_read_input_uses_sample_k(self):
        ctx, _, _, _ = make_ctx(k=2)
        assert ctx.read_input("i") == "sample-2"

    def test_read_input_missing_sample(self):
        ctx, _, _, _ = make_ctx(k=5)
        assert is_no_data(ctx.read_input("i"))

    def test_single_channel_name_optional(self):
        ctx, _, _, _ = make_ctx()
        assert ctx.read_input() == "sample-1"

    def test_ambiguous_channel_requires_name(self):
        ctx, _, _, _ = make_ctx(
            external_inputs={"i": {1: 1}, "j": {1: 2}}
        )
        with pytest.raises(ChannelError, match="specify the channel"):
            ctx.read_input()

    def test_write_output_records_sample_k(self):
        ctx, _, _, ext = make_ctx(k=3)
        ctx.write_output("val")
        assert ext.as_sequence() == [(3, "val")]

    def test_write_output_unknown(self):
        ctx, _, _, _ = make_ctx()
        with pytest.raises(ChannelError):
            ctx.write_output(1, "ghost")


class TestVariables:
    def test_assign_and_get(self):
        ctx, _, _, _ = make_ctx()
        ctx.assign("x", 10)
        assert ctx.get("x") == 10
        assert ctx.vars["x"] == 10

    def test_get_default(self):
        ctx, _, _, _ = make_ctx()
        assert ctx.get("missing", "dflt") == "dflt"

    def test_variables_shared_with_store(self):
        store = {"x": 1}
        ctx, _, _, _ = make_ctx(variables=store)
        ctx.assign("x", 2)
        assert store["x"] == 2


class TestTracing:
    def test_actions_recorded_in_order(self):
        trace = Trace()
        ctx, fifo, _, _ = make_ctx(trace=trace)
        fifo.write("v")
        ctx.read("in_c")
        ctx.write("out_c", 1)
        ctx.read_input("i")
        ctx.write_output("done")
        ctx.assign("x", 3)
        kinds = [type(a) for a in trace]
        assert kinds == [ChannelRead, ChannelWrite, ExternalRead, ExternalWrite, Assign]

    def test_trace_values(self):
        trace = Trace()
        ctx, _, _, _ = make_ctx(trace=trace)
        ctx.write("out_c", 42)
        action = trace[0]
        assert action.channel == "out_c" and action.value == 42

    def test_no_trace_means_no_recording(self):
        ctx, _, _, _ = make_ctx(trace=None)
        ctx.write("out_c", 1)  # must not raise


class TestProcessAndBehavior:
    def test_process_generator_shortcuts(self):
        p = Process("p", PeriodicGenerator(100, deadline=80, burst=3),
                    KernelBehavior(lambda ctx: None))
        assert p.period == 100
        assert p.deadline == 80
        assert p.burst == 3
        assert not p.is_sporadic

    def test_kernel_behavior_initial_variables_are_copied(self):
        b = KernelBehavior(lambda ctx: None, initial={"x": 1})
        v1, v2 = b.initial_variables(), b.initial_variables()
        v1["x"] = 99
        assert v2["x"] == 1

    def test_kernel_must_be_callable(self):
        with pytest.raises(TypeError):
            KernelBehavior("not callable")

    def test_empty_process_name_rejected(self):
        from repro.errors import SemanticsError

        with pytest.raises(SemanticsError):
            Process("", PeriodicGenerator(1), KernelBehavior(lambda c: None))
